//! Log₂-bucketed histogram for latency-like `u64` samples.
//!
//! Fixed 64-bucket layout: bucket 0 holds the value 0, bucket *i* (1-based)
//! holds values whose bit length is *i*, i.e. the range `[2^(i-1), 2^i)`.
//! Values at or beyond `2^63` clamp into the top bucket and bump an
//! `overflow` counter, so a wild sample (a negative duration cast, an
//! uninitialized stamp) is visible instead of silently stretching the
//! scale. That gives constant-time recording, ~600 bytes of state
//! regardless of sample count, and quantiles with at worst one-octave (2×)
//! resolution — the right trade for nanosecond latencies spanning six
//! orders of magnitude. Exact `min`/`max`/`sum` are tracked alongside so
//! the tails are not blurred by bucketing.

use serde::Serialize;

const BUCKETS: usize = 64;
const TOP_BUCKET: usize = BUCKETS - 1;

/// A log₂-bucketed distribution of `u64` samples.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    overflow: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            overflow: 0,
        }
    }
}

/// Bucket index for `v`, clamped into the top bucket for values whose bit
/// length exceeds the layout (`v >= 2^63`).
fn bucket_of(v: u64) -> usize {
    ((u64::BITS.saturating_sub(v.leading_zeros())) as usize).min(TOP_BUCKET)
}

/// Inclusive-exclusive value range `[lo, hi)` covered by a bucket. The top
/// bucket is open-ended (it also absorbs clamped overflow samples).
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (
            1u64 << i.saturating_sub(1),
            if i == TOP_BUCKET { u64::MAX } else { 1u64 << i },
        )
    }
}

impl LogHistogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Values at or beyond `2^63` land in the top
    /// bucket and are additionally counted as overflow.
    // bcp:hot-path — one bucket bump per recorded sample
    pub fn record(&mut self, v: u64) {
        if (u64::BITS.saturating_sub(v.leading_zeros())) as usize > TOP_BUCKET {
            self.overflow = self.overflow.saturating_add(1);
        }
        // audit: allow(index): bucket_of clamps to TOP_BUCKET, which is counts.len() - 1
        let bucket = &mut self.counts[bucket_of(v)];
        *bucket = bucket.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(u128::from(v));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Samples that clamped into the top bucket (`v >= 2^63`).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), linearly interpolated inside
    /// the containing bucket and clamped to the exact observed `min`/`max`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum.saturating_add(c) >= rank {
                let (lo, hi) = bucket_range(i);
                let within = rank.saturating_sub(cum) as f64 / c as f64;
                let est = (hi.saturating_sub(lo) as f64).mul_add(within, lo as f64);
                return (est as u64).clamp(self.min, self.max);
            }
            cum = cum.saturating_add(c);
        }
        self.max
    }

    /// Freeze into a serializable summary.
    pub fn summarize(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: u64::try_from(self.sum).unwrap_or(u64::MAX),
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            overflow: self.overflow,
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.overflow = self.overflow.saturating_add(other.overflow);
    }
}

/// Point-in-time summary of a [`LogHistogram`], as exported in
/// `summary.json`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sum of all samples (saturating at `u64::MAX` on export).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (≤ one octave of bucketing error).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Samples that clamped into the top bucket (`v >= 2^63`).
    pub overflow: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        let s = h.summarize();
        assert_eq!((s.count, s.min, s.max, s.p50), (0, 0, 0, 0));
        assert_eq!((s.p95, s.p99, s.overflow), (0, 0, 0));
        assert_eq!(s.mean, 0.0);
        assert_eq!(h.quantile(0.99), 0, "empty histogram quantile is 0");
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let mut h = LogHistogram::new();
        h.record(777);
        let s = h.summarize();
        assert_eq!((s.p50, s.p95, s.p99), (777, 777, 777));
        assert_eq!((s.min, s.max), (777, 777));
        assert_eq!(s.overflow, 0);
    }

    #[test]
    fn oversized_samples_clamp_and_count_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX); // >= 2^63: clamps into the top bucket
        h.record(1u64 << 63);
        h.record((1u64 << 63) - 1); // largest non-overflow value
        h.record(100);
        assert_eq!(h.overflow(), 2);
        let s = h.summarize();
        assert_eq!(s.overflow, 2);
        assert_eq!(s.count, 4, "clamped samples still count");
        // Exact extremes survive the clamp.
        assert_eq!((s.min, s.max), (100, u64::MAX));
        // Quantiles stay within the observed range.
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert!(h.quantile(0.01) >= 100);
    }

    #[test]
    fn exact_stats_track_samples() {
        let mut h = LogHistogram::new();
        for v in [3u64, 9, 100, 1000, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1112);
        let s = h.summarize();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 222.4).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_octave_accurate() {
        let mut h = LogHistogram::new();
        // 1000 samples uniform over [0, 10_000).
        for i in 0..1000u64 {
            h.record(i * 10);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // True p50 = 5000, p99 = 9900; allow one octave of slack.
        assert!((2500..=10_000).contains(&p50), "p50 {p50}");
        assert!((4950..=10_000).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn quantiles_clamp_to_observed_extremes() {
        let mut h = LogHistogram::new();
        h.record(700);
        h.record(700);
        assert_eq!(h.quantile(0.0), 700);
        assert_eq!(h.quantile(1.0), 700);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let s = a.summarize();
        assert_eq!((s.min, s.max), (5, 500));
    }

    #[test]
    fn bucket_layout_is_consistent() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(u64::MAX), TOP_BUCKET, "overflow clamps to top");
        assert_eq!(bucket_of(1u64 << 62), TOP_BUCKET);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert!(lo < hi, "bucket {i}");
            assert_eq!(bucket_of(lo), i);
        }
    }

    #[test]
    fn merge_carries_overflow() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(u64::MAX);
        b.record(u64::MAX);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.overflow(), 2);
        assert_eq!(a.count(), 3);
    }
}
