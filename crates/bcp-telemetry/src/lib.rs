//! Instrumentation for the BinaryCoP workspace.
//!
//! A deliberately small observability layer — counters, gauges,
//! log-bucketed histograms, RAII span timers, a JSONL event stream and an
//! end-of-run summary report — built only on std plus the workspace's
//! existing `parking_lot`/`serde`/`serde_json`. No external telemetry
//! dependency: the edge-deployment story of the paper (a Zynq SoC with no
//! network guarantees) wants metrics that can be dumped to a file and
//! scraped later, not a live exporter.
//!
//! # Model
//!
//! A [`Registry`] is a cheaply-cloneable handle to a shared metric store:
//!
//! * **Counters** — monotonic `u64` (frames processed, per-class
//!   predictions, optimizer steps).
//! * **Gauges** — last-write-wins `f64` (current learning rate, FIFO
//!   occupancy at sample time).
//! * **Histograms** — log₂-bucketed `u64` distributions with `p50/p95/p99`
//!   summaries (per-frame latency in ns, per-epoch wall time).
//! * **Spans** — RAII timers ([`Registry::span`]) that record their
//!   lifetime into a histogram and optionally emit a JSONL event.
//!
//! [`Registry::snapshot`] freezes everything into a serializable
//! [`Snapshot`]; [`Registry::write_artifacts`] writes `events.jsonl` and
//! `summary.json` into a directory.
//!
//! # Naming convention
//!
//! Dotted lowercase paths, unit suffix last: `stream.stage0.busy_ns`,
//! `train.epoch.loss` (gauge), `predict.latency_ns` (histogram),
//! `predict.class.correct` (counter). Keep cardinality bounded — names are
//! map keys, not label sets.

#![forbid(unsafe_code)]
#![warn(clippy::arithmetic_side_effects)]

mod histogram;
mod registry;
mod report;
mod sink;

pub use histogram::{HistogramSummary, LogHistogram};
pub use registry::{Counter, Gauge, Histogram, Registry, Span};
pub use report::Snapshot;
pub use sink::Event;
