//! The shared metric store and its handle types.

use crate::histogram::LogHistogram;
use crate::report::Snapshot;
use crate::sink::{Event, Sink};
use parking_lot::{Mutex, RwLock};
use serde::{Map, Value};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Inner {
    start: Instant,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<Mutex<f64>>>>,
    histograms: RwLock<BTreeMap<String, Arc<Mutex<LogHistogram>>>>,
    sink: Mutex<Sink>,
}

/// Cheaply-cloneable handle to a shared metric store. All methods are
/// thread-safe; handles returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram) keep
/// working after the registry handle they came from is dropped.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Metrics-only registry: events are dropped.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Inner {
                start: Instant::now(),
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                sink: Mutex::new(Sink::Null),
            }),
        }
    }

    /// Registry that buffers JSONL events in memory (drain with
    /// [`take_events`](Registry::take_events) or write via
    /// [`write_artifacts`](Registry::write_artifacts)).
    pub fn with_event_buffer() -> Registry {
        let r = Registry::new();
        *r.inner.sink.lock() = Sink::Memory(Vec::new());
        r
    }

    /// Registry that streams JSONL events to `path` as they happen.
    pub fn with_jsonl_file(path: impl AsRef<Path>) -> std::io::Result<Registry> {
        let r = Registry::new();
        *r.inner.sink.lock() = Sink::file(path.as_ref())?;
        Ok(r)
    }

    /// Microseconds elapsed since the registry was created (the `ts_us`
    /// timebase of every event).
    pub fn elapsed_us(&self) -> u64 {
        self.inner.start.elapsed().as_micros() as u64
    }

    /// Monotonic counter handle, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().get(name) {
            return Counter(c.clone());
        }
        let mut map = self.inner.counters.write();
        Counter(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone(),
        )
    }

    /// Last-write-wins gauge handle, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return Gauge(g.clone());
        }
        let mut map = self.inner.gauges.write();
        Gauge(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(0.0)))
                .clone(),
        )
    }

    /// Log-bucketed histogram handle, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return Histogram(h.clone());
        }
        let mut map = self.inner.histograms.write();
        Histogram(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(LogHistogram::new())))
                .clone(),
        )
    }

    /// Start an RAII span timer. On drop it records its lifetime (ns) into
    /// the histogram `name` and, when an event sink is attached, emits a
    /// `{"kind":"span","name":…,"dur_ns":…}` JSONL event.
    pub fn span(&self, name: &str) -> Span {
        Span {
            registry: self.clone(),
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// Emit a free-form `mark` event carrying `fields`. No-op without a
    /// sink, so it is safe to call from hot-ish paths.
    pub fn mark(&self, name: &str, fields: Map) {
        self.emit("mark", name, fields);
    }

    pub(crate) fn emit(&self, kind: &'static str, name: &str, fields: Map) {
        let mut sink = self.inner.sink.lock();
        if sink.is_null() {
            return;
        }
        let event = Event {
            ts_us: self.elapsed_us(),
            kind,
            name: name.to_string(),
            fields,
        };
        sink.emit(&event);
    }

    /// Drain buffered events (memory sink only; empty otherwise). Each
    /// string is one JSON object line.
    pub fn take_events(&self) -> Vec<String> {
        match &mut *self.inner.sink.lock() {
            Sink::Memory(lines) => std::mem::take(lines),
            _ => Vec::new(),
        }
    }

    /// Freeze all metrics into a serializable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .read()
            .iter()
            // ordering: Relaxed — snapshot reads tolerate torn-across-
            // counters staleness; each counter alone is atomic.
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), *v.lock()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.lock().summarize()))
            .collect();
        Snapshot {
            elapsed_us: self.elapsed_us(),
            counters,
            gauges,
            histograms,
        }
    }

    /// Render every metric as plain text, one `name value` line per
    /// counter, gauge, and histogram statistic (`.count`, `.mean`, `.p50`,
    /// `.p95`, `.p99`, plus `.overflow` when nonzero) — the `/metrics`-style
    /// dump for scraping or eyeballing. Lines are sorted by name, so the
    /// output is stable across runs and diffs cleanly.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut lines: Vec<String> = Vec::new();
        for (name, v) in self.inner.counters.read().iter() {
            // ordering: Relaxed — same as `snapshot`: a metrics dump
            // needs per-counter atomicity, not cross-counter ordering.
            lines.push(format!("{name} {}", v.load(Ordering::Relaxed)));
        }
        for (name, v) in self.inner.gauges.read().iter() {
            lines.push(format!("{name} {}", *v.lock()));
        }
        for (name, h) in self.inner.histograms.read().iter() {
            let s = h.lock().summarize();
            lines.push(format!("{name}.count {}", s.count));
            lines.push(format!("{name}.mean {:.1}", s.mean));
            lines.push(format!("{name}.p50 {}", s.p50));
            lines.push(format!("{name}.p95 {}", s.p95));
            lines.push(format!("{name}.p99 {}", s.p99));
            if s.overflow > 0 {
                lines.push(format!("{name}.overflow {}", s.overflow));
            }
        }
        lines.sort();
        let mut out = String::new();
        for l in lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// Write run artifacts into `dir` (created if missing):
    /// `events.jsonl` (buffered events; for a file sink the stream is
    /// flushed wherever it already points) and `summary.json` (the
    /// [`Snapshot`]). Returns the summary path.
    pub fn write_artifacts(&self, dir: impl AsRef<Path>) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        {
            let mut sink = self.inner.sink.lock();
            if let Sink::Memory(lines) = &mut *sink {
                let mut body = lines.join("\n");
                if !body.is_empty() {
                    body.push('\n');
                }
                std::fs::write(dir.join("events.jsonl"), body)?;
            } else {
                sink.flush();
            }
        }
        let summary = dir.join("summary.json");
        std::fs::write(&summary, self.snapshot().to_pretty_json())?;
        Ok(summary)
    }
}

/// Monotonic counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    // bcp:hot-path — counters are bumped at every request milestone
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — monotonic statistic; increments carry no
        // payload and readers tolerate staleness.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — statistic read, staleness is acceptable.
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge.
#[derive(Clone)]
pub struct Gauge(Arc<Mutex<f64>>);

impl Gauge {
    /// Overwrite the value.
    // bcp:hot-path — the queue-depth gauge is written on every submit
    pub fn set(&self, v: f64) {
        // audit: allow(block): parking_lot mutex around a single f64 store — a few instructions, uncontended by design
        *self.0.lock() = v;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        *self.0.lock()
    }
}

/// Log-bucketed histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<LogHistogram>>);

impl Histogram {
    /// Record one sample.
    // bcp:hot-path — latency/batch-size samples land here once per request/batch
    pub fn record(&self, v: u64) {
        // audit: allow(block): parking_lot mutex around a fixed-size bucket bump — a few instructions, never held across compute
        self.0.lock().record(v);
    }

    /// Record a duration as nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Summarize the current state.
    pub fn summarize(&self) -> crate::HistogramSummary {
        self.0.lock().summarize()
    }
}

/// RAII span timer from [`Registry::span`]. Dropping records the elapsed
/// time; [`Span::finish`] drops explicitly and returns the duration.
pub struct Span {
    registry: Registry,
    name: String,
    start: Instant,
}

impl Span {
    /// End the span now and return its duration.
    // audit: cold — spans time CLI phases, never the serving path (shares its name with Tracer::finish)
    pub fn finish(self) -> Duration {
        let d = self.start.elapsed();
        drop(self);
        d
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        self.registry.histogram(&self.name).record(ns);
        let mut fields = Map::new();
        fields.insert("dur_ns".into(), Value::UInt(ns));
        self.registry.emit("span", &self.name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let r = Registry::new();
        r.counter("frames").add(3);
        r.counter("frames").inc();
        r.gauge("lr").set(0.02);
        r.histogram("lat").record(100);
        r.histogram("lat").record(200);
        let s = r.snapshot();
        assert_eq!(s.counters["frames"], 4);
        assert_eq!(s.gauges["lr"], 0.02);
        assert_eq!(s.histograms["lat"].count, 2);
    }

    #[test]
    fn handles_outlive_cloned_registries() {
        let c = {
            let r = Registry::new();
            r.counter("x")
        };
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = r.counter("hits");
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("hits").get(), 80_000);
    }

    #[test]
    fn span_records_into_histogram_and_events() {
        let r = Registry::with_event_buffer();
        {
            let _s = r.span("work");
            std::thread::sleep(Duration::from_millis(2));
        }
        let s = r.snapshot();
        assert_eq!(s.histograms["work"].count, 1);
        assert!(s.histograms["work"].min >= 1_000_000, "span under 1ms?");
        let events = r.take_events();
        assert_eq!(events.len(), 1);
        let v: Value = serde_json::from_str(&events[0]).unwrap();
        assert_eq!(v["kind"].as_str(), Some("span"));
        assert_eq!(v["name"].as_str(), Some("work"));
        assert!(v["dur_ns"].as_u64().unwrap() >= 1_000_000);
    }

    #[test]
    fn render_text_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("serve.ok").add(7);
        r.counter("serve.requests").add(9);
        r.gauge("serve.queue_depth").set(2.0);
        r.histogram("serve.latency_ns").record(1000);
        let text = r.render_text();
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "dump must be sorted by name");
        assert!(lines.contains(&"serve.ok 7"));
        assert!(lines.contains(&"serve.requests 9"));
        assert!(lines.contains(&"serve.queue_depth 2"));
        assert!(lines.contains(&"serve.latency_ns.count 1"));
        assert!(text.contains("serve.latency_ns.p99 1000"));
        assert!(
            !text.contains(".overflow"),
            "overflow line only when nonzero"
        );
        // Rendering twice is identical (stability).
        assert_eq!(text, r.render_text());
    }

    #[test]
    fn mark_events_carry_fields() {
        let r = Registry::with_event_buffer();
        let mut fields = Map::new();
        fields.insert("epoch".into(), Value::UInt(3));
        r.mark("train.epoch", fields);
        let events = r.take_events();
        let v: Value = serde_json::from_str(&events[0]).unwrap();
        assert_eq!(v["epoch"].as_u64(), Some(3));
        assert_eq!(v["kind"].as_str(), Some("mark"));
    }
}
