//! Frozen metric snapshots and the `summary.json` format.

use crate::histogram::HistogramSummary;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Point-in-time copy of every metric in a registry. This is the schema
/// of `summary.json`: `{"elapsed_us":…,"counters":{…},"gauges":{…},
/// "histograms":{name:{count,sum,min,max,mean,p50,p95,p99,overflow}}}`.
#[derive(Clone, Debug, Serialize)]
pub struct Snapshot {
    /// Registry age at snapshot time, microseconds.
    pub elapsed_us: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// Pretty-printed JSON (the on-disk `summary.json` form).
    pub fn to_pretty_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("snapshot json")
    }

    /// Compact human-readable rendering for terminal output — histograms
    /// as `count/mean/p50/p95/p99`, everything sorted by name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry summary ({} ms elapsed)",
            self.elapsed_us / 1000
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "    {k} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "    {k} = {v:.6}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "  histograms (n | mean | p50 | p95 | p99):");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {k}: {} | {:.0} | {} | {} | {}",
                    h.count, h.mean, h.p50, h.p95, h.p99
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;
    use serde::Value;

    #[test]
    fn summary_json_parses_back_with_expected_schema() {
        let r = Registry::new();
        r.counter("a.b").add(7);
        r.gauge("g").set(1.5);
        for v in [10u64, 20, 40, 80] {
            r.histogram("h.ns").record(v);
        }
        let json = r.snapshot().to_pretty_json();
        let v: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["counters"]["a.b"].as_u64(), Some(7));
        assert_eq!(v["gauges"]["g"].as_f64(), Some(1.5));
        let h = &v["histograms"]["h.ns"];
        for key in [
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99", "overflow",
        ] {
            assert!(!h[key].is_null(), "missing {key}");
        }
        assert_eq!(h["count"].as_u64(), Some(4));
    }

    #[test]
    fn artifacts_land_in_directory() {
        let dir = std::env::temp_dir().join(format!("bcp-telemetry-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = Registry::with_event_buffer();
        r.counter("n").inc();
        drop(r.span("s"));
        let summary_path = r.write_artifacts(&dir).unwrap();
        let summary: Value =
            serde_json::from_str(&std::fs::read_to_string(&summary_path).unwrap()).unwrap();
        assert_eq!(summary["counters"]["n"].as_u64(), Some(1));
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        for line in events.lines() {
            let e: Value = serde_json::from_str(line).unwrap();
            assert!(!e["ts_us"].is_null() && !e["kind"].is_null());
        }
        assert_eq!(events.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn text_rendering_mentions_every_metric() {
        let r = Registry::new();
        r.counter("frames").add(2);
        r.histogram("lat").record(5);
        let text = r.snapshot().render_text();
        assert!(text.contains("frames = 2"));
        assert!(text.contains("lat:"));
    }
}
