//! JSONL event stream.
//!
//! Events are point-in-time records (span completions, explicit marks)
//! serialized one JSON object per line. The sink either buffers in memory
//! (tests, short runs) or streams through a `BufWriter` to a file so long
//! runs don't accumulate unbounded state.

use serde::{Map, Serialize, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// One telemetry event. Flat on purpose: every field lands at the top
/// level of the JSON object so `grep`/`jq` one-liners work on the stream.
#[derive(Clone, Debug)]
pub struct Event {
    /// Microseconds since the owning registry was created.
    pub ts_us: u64,
    /// Event kind: `"span"`, `"mark"`, …
    pub kind: &'static str,
    /// Metric/span name (dotted path, see crate docs).
    pub name: String,
    /// Kind-specific payload, merged into the top-level object.
    pub fields: Map,
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("ts_us".into(), Value::UInt(self.ts_us));
        m.insert("kind".into(), Value::Str(self.kind.into()));
        m.insert("name".into(), Value::Str(self.name.clone()));
        for (k, v) in &self.fields {
            m.insert(k.clone(), v.clone());
        }
        Value::Object(m)
    }
}

pub(crate) enum Sink {
    /// Drop events (metrics-only operation).
    Null,
    /// Keep serialized lines in memory.
    Memory(Vec<String>),
    /// Stream lines to a file.
    File(BufWriter<File>),
}

impl Sink {
    pub(crate) fn file(path: &Path) -> std::io::Result<Sink> {
        Ok(Sink::File(BufWriter::new(File::create(path)?)))
    }

    pub(crate) fn emit(&mut self, event: &Event) {
        match self {
            Sink::Null => {}
            Sink::Memory(lines) => {
                lines.push(serde_json::to_string(&event.to_value()).expect("event json"))
            }
            Sink::File(w) => {
                let line = serde_json::to_string(&event.to_value()).expect("event json");
                // A full disk shouldn't take down the pipeline; drop the
                // event instead.
                let _ = writeln!(w, "{line}");
            }
        }
    }

    pub(crate) fn flush(&mut self) {
        if let Sink::File(w) = self {
            let _ = w.flush();
        }
    }

    pub(crate) fn is_null(&self) -> bool {
        matches!(self, Sink::Null)
    }
}
