//! 2-D convolution forward/backward via im2col + GEMM.
//!
//! Weights are stored `(C_o, C_i, K, K)`; activations NCHW. The forward
//! pass lowers each sample to a column matrix and multiplies with the
//! flattened weight matrix, which lands the result directly in CHW order.
//! Both backward passes reuse the same lowering (GEMM with a transposed
//! operand + `col2im`), so a single pair of adjoint kernels covers the whole
//! training path.

use crate::im2col::{col2im, im2col, WindowSpec};
use crate::matmul::{matmul, matmul_ta, matmul_tb};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Full geometry of a convolution layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Sliding-window geometry.
    pub window: WindowSpec,
}

impl Conv2dSpec {
    /// Convenience constructor for the K×K, pad, stride=1 layers BinaryCoP
    /// uses (all convolutions in Table I are K=3, stride 1).
    pub fn new(c_in: usize, c_out: usize, k: usize, pad: usize) -> Self {
        Conv2dSpec {
            c_in,
            c_out,
            window: WindowSpec { k, pad, stride: 1 },
        }
    }

    /// Expected weight shape.
    pub fn weight_shape(&self) -> Shape {
        Shape(vec![self.c_out, self.c_in, self.window.k, self.window.k])
    }

    /// Number of weight parameters.
    pub fn weight_count(&self) -> usize {
        self.c_out * self.c_in * self.window.k * self.window.k
    }

    fn check_weight(&self, w: &Tensor) {
        assert_eq!(
            *w.shape(),
            self.weight_shape(),
            "weight shape {} does not match spec {:?}",
            w.shape(),
            self
        );
    }
}

/// `y = conv2d(x, w)` for `x: N×C_i×H×W`, `w: C_o×C_i×K×K`.
pub fn conv2d_forward(x: &Tensor, w: &Tensor, spec: Conv2dSpec) -> Tensor {
    spec.check_weight(w);
    assert_eq!(x.shape().rank(), 4, "conv2d input must be NCHW");
    assert_eq!(x.shape().dim(1), spec.c_in, "input channel mismatch");
    let (n, h, win) = (x.shape().dim(0), x.shape().dim(2), x.shape().dim(3));
    let (oh, ow) = spec.window.out_hw(h, win);
    let wmat = w.reshaped(Shape::d2(
        spec.c_out,
        spec.c_in * spec.window.k * spec.window.k,
    ));
    let mut out = Vec::with_capacity(n * spec.c_out * oh * ow);
    for s in 0..n {
        let col = im2col(&x.sample(s), spec.window);
        let y = matmul(&wmat, &col); // C_o × (OH·OW), already CHW order
        out.extend_from_slice(y.as_slice());
    }
    Tensor::from_vec(Shape::nchw(n, spec.c_out, oh, ow), out)
}

/// Weight gradient: `dW[o, i, ky, kx] = Σ_n Σ_p dY[n,o,p] · col_n[(i,ky,kx), p]`.
pub fn conv2d_backward_weight(x: &Tensor, dy: &Tensor, spec: Conv2dSpec) -> Tensor {
    assert_eq!(x.shape().rank(), 4, "conv2d input must be NCHW");
    assert_eq!(dy.shape().rank(), 4, "conv2d output grad must be NCHW");
    let n = x.shape().dim(0);
    assert_eq!(dy.shape().dim(0), n, "batch mismatch");
    assert_eq!(dy.shape().dim(1), spec.c_out, "output channel mismatch");
    let ohow = dy.shape().dim(2) * dy.shape().dim(3);
    let kk = spec.c_in * spec.window.k * spec.window.k;
    let mut acc = Tensor::zeros(Shape::d2(spec.c_out, kk));
    for s in 0..n {
        let col = im2col(&x.sample(s), spec.window);
        let dys = dy.sample(s).reshape(Shape::d2(spec.c_out, ohow));
        let dw = matmul_tb(&dys, &col); // (C_o×P)·(KK×P)ᵀ = C_o×KK
        for (a, &b) in acc.as_mut_slice().iter_mut().zip(dw.as_slice()) {
            *a += b;
        }
    }
    acc.reshape(spec.weight_shape())
}

/// Input gradient: scatter `Wᵀ · dY` columns back through `col2im`.
///
/// `in_hw` is the spatial size of the forward input (needed because the
/// output size does not determine it uniquely under padding/stride).
pub fn conv2d_backward_input(
    w: &Tensor,
    dy: &Tensor,
    spec: Conv2dSpec,
    in_hw: (usize, usize),
) -> Tensor {
    spec.check_weight(w);
    assert_eq!(dy.shape().rank(), 4, "conv2d output grad must be NCHW");
    assert_eq!(dy.shape().dim(1), spec.c_out, "output channel mismatch");
    let n = dy.shape().dim(0);
    let ohow = dy.shape().dim(2) * dy.shape().dim(3);
    let wmat = w.reshaped(Shape::d2(
        spec.c_out,
        spec.c_in * spec.window.k * spec.window.k,
    ));
    let mut out = Vec::with_capacity(n * spec.c_in * in_hw.0 * in_hw.1);
    for s in 0..n {
        let dys = dy.sample(s).reshape(Shape::d2(spec.c_out, ohow));
        let dcol = matmul_ta(&wmat, &dys); // KK × (OH·OW)
        let dx = col2im(&dcol, spec.c_in, in_hw.0, in_hw.1, spec.window);
        out.extend_from_slice(dx.as_slice());
    }
    Tensor::from_vec(Shape::nchw(n, spec.c_in, in_hw.0, in_hw.1), out)
}

/// Reference direct convolution (quadruple loop), used by tests only.
pub fn conv2d_direct(x: &Tensor, w: &Tensor, spec: Conv2dSpec) -> Tensor {
    spec.check_weight(w);
    let (n, h, win) = (x.shape().dim(0), x.shape().dim(2), x.shape().dim(3));
    let (oh, ow) = spec.window.out_hw(h, win);
    let mut out = Tensor::zeros(Shape::nchw(n, spec.c_out, oh, ow));
    for s in 0..n {
        for co in 0..spec.c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..spec.c_in {
                        for ky in 0..spec.window.k {
                            for kx in 0..spec.window.k {
                                let iy = (oy * spec.window.stride + ky) as isize
                                    - spec.window.pad as isize;
                                let ix = (ox * spec.window.stride + kx) as isize
                                    - spec.window.pad as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= win as isize {
                                    continue;
                                }
                                acc += x.at(&[s, ci, iy as usize, ix as usize])
                                    * w.at(&[co, ci, ky, kx]);
                            }
                        }
                    }
                    *out.at_mut(&[s, co, oy, ox]) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::uniform;
    use proptest::prelude::*;

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn im2col_forward_matches_direct() {
        let spec = Conv2dSpec::new(3, 5, 3, 1);
        let x = uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0, 1);
        let w = uniform(spec.weight_shape(), -1.0, 1.0, 2);
        assert!(close(
            &conv2d_forward(&x, &w, spec),
            &conv2d_direct(&x, &w, spec),
            1e-4
        ));
    }

    #[test]
    fn forward_shape_cnv_first_layer() {
        // Conv1.1 of CNV: 3→64, K=3, no padding, 32×32 input → 30×30.
        let spec = Conv2dSpec::new(3, 64, 3, 0);
        let x = uniform(Shape::nchw(1, 3, 32, 32), -1.0, 1.0, 3);
        let w = uniform(spec.weight_shape(), -0.1, 0.1, 4);
        let y = conv2d_forward(&x, &w, spec);
        assert_eq!(y.shape().dims(), &[1, 64, 30, 30]);
    }

    /// Numeric gradient check: perturb one weight, compare finite difference
    /// against the analytic dW.
    #[test]
    fn weight_gradient_matches_finite_difference() {
        let spec = Conv2dSpec::new(2, 3, 3, 1);
        let x = uniform(Shape::nchw(2, 2, 5, 5), -1.0, 1.0, 10);
        let w = uniform(spec.weight_shape(), -0.5, 0.5, 11);
        // Loss = sum(y); dL/dy = 1.
        let y = conv2d_forward(&x, &w, spec);
        let dy = Tensor::ones(y.shape().clone());
        let dw = conv2d_backward_weight(&x, &dy, spec);
        let eps = 1e-2f32;
        for probe in [0usize, 7, dw.numel() - 1] {
            let mut wp = w.clone();
            wp.as_mut_slice()[probe] += eps;
            let lp: f32 = conv2d_forward(&x, &wp, spec).as_slice().iter().sum();
            let mut wm = w.clone();
            wm.as_mut_slice()[probe] -= eps;
            let lm: f32 = conv2d_forward(&x, &wm, spec).as_slice().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dw.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + analytic.abs()),
                "dW[{probe}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let spec = Conv2dSpec::new(2, 2, 3, 0);
        let x = uniform(Shape::nchw(1, 2, 6, 6), -1.0, 1.0, 20);
        let w = uniform(spec.weight_shape(), -0.5, 0.5, 21);
        let y = conv2d_forward(&x, &w, spec);
        let dy = Tensor::ones(y.shape().clone());
        let dx = conv2d_backward_input(&w, &dy, spec, (6, 6));
        assert_eq!(dx.shape(), x.shape());
        let eps = 1e-2f32;
        for probe in [0usize, 17, dx.numel() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let lp: f32 = conv2d_forward(&xp, &w, spec).as_slice().iter().sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let lm: f32 = conv2d_forward(&xm, &w, spec).as_slice().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + analytic.abs()),
                "dX[{probe}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_forward_equals_direct(ci in 1usize..3, co in 1usize..4,
                                      h in 3usize..8, w in 3usize..8,
                                      pad in 0usize..2, seed in 0u64..300) {
            let spec = Conv2dSpec::new(ci, co, 3, pad);
            prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
            let x = uniform(Shape::nchw(1, ci, h, w), -1.0, 1.0, seed);
            let wt = uniform(spec.weight_shape(), -1.0, 1.0, seed + 1);
            prop_assert!(close(&conv2d_forward(&x, &wt, spec), &conv2d_direct(&x, &wt, spec), 1e-4));
        }
    }
}
