//! im2col / col2im lowering: convolution ⇄ GEMM.
//!
//! For one CHW sample, `im2col` lays every K×K receptive field out as a
//! column of a `(C·K·K) × (OH·OW)` matrix, so that the convolution with a
//! `(C_o) × (C_i·K·K)` weight matrix becomes a single GEMM whose result is
//! already in CHW order. `col2im` is its adjoint, scattering gradient columns
//! back onto the (padded) input — exactly the operation the conv backward
//! pass needs.

use crate::shape::{conv_out_dim, Shape};
use crate::tensor::Tensor;

/// Geometry of a 2-D sliding window (shared by conv and pooling).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpec {
    /// Kernel extent (square kernels only — all BinaryCoP layers use K=3).
    pub k: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Window stride.
    pub stride: usize,
}

impl WindowSpec {
    /// Output spatial size for an `h × w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_dim(h, self.k, self.pad, self.stride),
            conv_out_dim(w, self.k, self.pad, self.stride),
        )
    }
}

/// Lower one CHW sample to its column matrix of shape `(C·K·K) × (OH·OW)`.
///
/// Out-of-bounds taps (from padding) contribute zeros.
pub fn im2col(x: &Tensor, spec: WindowSpec) -> Tensor {
    assert_eq!(x.shape().rank(), 3, "im2col expects a CHW sample");
    let (c, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (oh, ow) = spec.out_hw(h, w);
    let cols = oh * ow;
    let rows = c * spec.k * spec.k;
    let src = x.as_slice();
    let mut out = vec![0.0f32; rows * cols];
    for ci in 0..c {
        for ky in 0..spec.k {
            for kx in 0..spec.k {
                let row = (ci * spec.k + ky) * spec.k + kx;
                let dst = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // whole output row reads padding for this tap
                    }
                    let src_row = &src[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[oy * ow + ox] = src_row[ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d2(rows, cols), out)
}

/// Adjoint of [`im2col`]: scatter-add a `(C·K·K) × (OH·OW)` column-gradient
/// matrix back to a CHW gradient of the original `(c, h, w)` input.
pub fn col2im(dcol: &Tensor, c: usize, h: usize, w: usize, spec: WindowSpec) -> Tensor {
    assert_eq!(
        dcol.shape().rank(),
        2,
        "col2im expects a rank-2 column matrix"
    );
    let (oh, ow) = spec.out_hw(h, w);
    let cols = oh * ow;
    assert_eq!(
        dcol.shape().dims(),
        &[c * spec.k * spec.k, cols],
        "col2im shape mismatch for c={c}, h={h}, w={w}, spec={spec:?}"
    );
    let src = dcol.as_slice();
    let mut out = vec![0.0f32; c * h * w];
    for ci in 0..c {
        for ky in 0..spec.k {
            for kx in 0..spec.k {
                let row = (ci * spec.k + ky) * spec.k + kx;
                let grad = &src[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let base = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[base + ix as usize] += grad[oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d3(c, h, w), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::uniform;
    use proptest::prelude::*;

    #[test]
    fn identity_kernel_geometry() {
        // K=1 stride=1 pad=0: im2col is a reshape.
        let x = Tensor::from_vec(Shape::d3(2, 2, 2), (0..8).map(|i| i as f32).collect());
        let col = im2col(
            &x,
            WindowSpec {
                k: 1,
                pad: 0,
                stride: 1,
            },
        );
        assert_eq!(col.shape().dims(), &[2, 4]);
        assert_eq!(col.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_patch() {
        // Single channel 3×3 input, K=3: one column equal to the whole image.
        let x = Tensor::from_vec(Shape::d3(1, 3, 3), (1..=9).map(|i| i as f32).collect());
        let col = im2col(
            &x,
            WindowSpec {
                k: 3,
                pad: 0,
                stride: 1,
            },
        );
        assert_eq!(col.shape().dims(), &[9, 1]);
        assert_eq!(col.as_slice(), x.as_slice());
    }

    #[test]
    fn padding_reads_zero() {
        let x = Tensor::ones(Shape::d3(1, 2, 2));
        let col = im2col(
            &x,
            WindowSpec {
                k: 3,
                pad: 1,
                stride: 1,
            },
        );
        assert_eq!(col.shape().dims(), &[9, 4]);
        // Center tap (ky=1,kx=1) always hits the image.
        let center = &col.as_slice()[4 * 4..5 * 4];
        assert_eq!(center, &[1.0, 1.0, 1.0, 1.0]);
        // Top-left tap (ky=0,kx=0) only hits the image at output (1,1).
        let tl = &col.as_slice()[0..4];
        assert_eq!(tl, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn stride_two_samples_every_other() {
        let x = Tensor::from_vec(Shape::d3(1, 4, 4), (0..16).map(|i| i as f32).collect());
        let col = im2col(
            &x,
            WindowSpec {
                k: 2,
                pad: 0,
                stride: 2,
            },
        );
        assert_eq!(col.shape().dims(), &[4, 4]);
        // Tap (0,0) picks the top-left of each 2×2 block.
        assert_eq!(&col.as_slice()[0..4], &[0.0, 2.0, 8.0, 10.0]);
    }

    /// col2im must be the exact adjoint of im2col: ⟨im2col(x), g⟩ = ⟨x, col2im(g)⟩.
    fn adjoint_check(c: usize, h: usize, w: usize, spec: WindowSpec, seed: u64) {
        let x = uniform(Shape::d3(c, h, w), -1.0, 1.0, seed);
        let col = im2col(&x, spec);
        let g = uniform(col.shape().clone(), -1.0, 1.0, seed + 1);
        let lhs: f32 = col
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&g, c, h, w, spec);
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "adjoint mismatch {lhs} vs {rhs} for spec {spec:?}"
        );
    }

    #[test]
    fn adjoint_no_padding() {
        adjoint_check(
            3,
            8,
            8,
            WindowSpec {
                k: 3,
                pad: 0,
                stride: 1,
            },
            10,
        );
    }

    #[test]
    fn adjoint_with_padding_and_stride() {
        adjoint_check(
            2,
            7,
            5,
            WindowSpec {
                k: 3,
                pad: 1,
                stride: 2,
            },
            20,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_adjoint(c in 1usize..4, h in 3usize..9, w in 3usize..9,
                        k in 1usize..4, pad in 0usize..2, stride in 1usize..3,
                        seed in 0u64..500) {
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            adjoint_check(c, h, w, WindowSpec { k, pad, stride }, seed);
        }
    }
}
