//! Seeded weight initializers.
//!
//! Every initializer takes an explicit seed so training runs — and therefore
//! every experiment table in EXPERIMENTS.md — are reproducible bit-for-bit.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform samples in `[lo, hi)`.
pub fn uniform(shape: Shape, lo: f32, hi: f32, seed: u64) -> Tensor {
    assert!(lo < hi, "uniform requires lo < hi (got {lo}..{hi})");
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(lo, hi);
    let n = shape.numel();
    let data: Vec<f32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    Tensor::from_vec(shape, data)
}

/// Standard-normal samples scaled by `std` (Box–Muller, deterministic).
pub fn normal(shape: Shape, std: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(f32::EPSILON, 1.0f32);
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = dist.sample(&mut rng);
        let u2: f32 = dist.sample(&mut rng);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Kaiming-He normal initialization for layers followed by sign/ReLU-like
/// nonlinearities: `std = sqrt(2 / fan_in)`.
pub fn kaiming(shape: Shape, fan_in: usize, seed: u64) -> Tensor {
    assert!(fan_in > 0, "kaiming requires positive fan_in");
    normal(shape, (2.0 / fan_in as f32).sqrt(), seed)
}

/// Xavier/Glorot uniform initialization: `U(±sqrt(6/(fan_in+fan_out)))`.
pub fn xavier(shape: Shape, fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    assert!(fan_in + fan_out > 0, "xavier requires positive fans");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn deterministic_given_seed() {
        let a = uniform(Shape::d1(100), -1.0, 1.0, 42);
        let b = uniform(Shape::d1(100), -1.0, 1.0, 42);
        let c = uniform(Shape::d1(100), -1.0, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(Shape::d1(10_000), -0.5, 0.25, 7);
        for &v in t.as_slice() {
            assert!((-0.5..0.25).contains(&v));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let t = normal(Shape::d1(50_000), 2.0, 11);
        let m = ops::mean(&t);
        let var = ops::mean(&t.map(|x| (x - m) * (x - m)));
        assert!(m.abs() < 0.05, "mean {m} too far from 0");
        assert!((var - 4.0).abs() < 0.2, "variance {var} too far from 4");
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let narrow = kaiming(Shape::d1(50_000), 8, 3);
        let wide = kaiming(Shape::d1(50_000), 512, 3);
        let std = |t: &Tensor| {
            let m = ops::mean(t);
            ops::mean(&t.map(|x| (x - m) * (x - m))).sqrt()
        };
        assert!((std(&narrow) - 0.5).abs() < 0.05); // sqrt(2/8)
        assert!((std(&wide) - 0.0625).abs() < 0.01); // sqrt(2/512)
    }

    #[test]
    fn xavier_respects_bound() {
        let t = xavier(Shape::d2(64, 64), 64, 64, 5);
        let bound = (6.0f32 / 128.0).sqrt();
        for &v in t.as_slice() {
            assert!(v.abs() <= bound);
        }
    }
}
