//! FP32 tensor substrate for the BinaryCoP reproduction.
//!
//! The paper's training flow (Sec. III-A) needs ordinary dense float
//! arithmetic: latent full-precision weights, batch-norm statistics,
//! gradients through the straight-through estimator, softmax loss. The Rust
//! deep-learning ecosystem is thin, so this crate implements the substrate
//! from scratch:
//!
//! - [`Tensor`]: contiguous row-major N-d array of `f32` (rank ≤ 4,
//!   NCHW convention for rank-4).
//! - [`matmul`]: cache-blocked, rayon-parallel GEMM kernels (plain,
//!   transposed-A, transposed-B) — the workhorse behind im2col convolution.
//! - [`im2col`]: lowering of convolutions to GEMM and its transpose
//!   (`col2im`) for the backward pass.
//! - [`conv`]: conv2d forward/backward (weights, inputs) built on the above.
//! - [`pool`]: max-pooling with argmax bookkeeping for the backward pass.
//! - [`init`]: seeded weight initializers (Kaiming, Xavier, uniform).
//!
//! Everything is deterministic given a seed; no global state.

#![forbid(unsafe_code)]

pub mod conv;
pub mod im2col;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod pool;
pub mod shape;
pub mod tensor;

pub use conv::{conv2d_backward_input, conv2d_backward_weight, conv2d_forward, Conv2dSpec};
pub use pool::{maxpool2d_backward, maxpool2d_forward, MaxPoolSpec};
pub use shape::Shape;
pub use tensor::Tensor;
