//! Cache-blocked, rayon-parallel GEMM kernels.
//!
//! im2col lowers every convolution in the training path to one of these three
//! products, so they are the hot loops of the whole workspace. The kernels
//! split the output row range across the rayon pool and use a fixed
//! K-blocking so the B panel stays in cache; inner loops are written over
//! slices so the compiler can elide bounds checks and vectorize.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// K-dimension block size. 256 f32 ≈ 1 KiB per A row fragment, keeping the
/// B panel (256×N_block) within L2 for the layer sizes used by CNV.
const KBLOCK: usize = 256;

/// `C = A · B` with `A: m×k`, `B: k×n` (both row-major rank-2 tensors).
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "A");
    let (kb, n) = dims2(b, "B");
    assert_eq!(
        k, kb,
        "matmul inner dims disagree: A is {m}×{k}, B is {kb}×{n}"
    );
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    out.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &av[i * k..(i + 1) * k];
        for k0 in (0..k).step_by(KBLOCK) {
            let kend = (k0 + KBLOCK).min(k);
            for kk in k0..kend {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &bv[kk * n..(kk + 1) * n];
                for (c, &bkj) in crow.iter_mut().zip(brow) {
                    *c += aik * bkj;
                }
            }
        }
    });
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// `C = Aᵀ · B` with `A: k×m`, `B: k×n` → `C: m×n`.
///
/// Used by the convolution weight gradient (`dW = dYᵀ · col` reshaped).
pub fn matmul_ta(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "A");
    let (kb, n) = dims2(b, "B");
    assert_eq!(
        k, kb,
        "matmul_ta inner dims disagree: Aᵀ is {m}×{k}, B is {kb}×{n}"
    );
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    // Parallelise over output rows (columns of A); each task streams down the
    // K dimension reading one strided column of A and full rows of B.
    out.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        for kk in 0..k {
            let aki = av[kk * m + i];
            if aki == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            for (c, &bkj) in crow.iter_mut().zip(brow) {
                *c += aki * bkj;
            }
        }
    });
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// `C = A · Bᵀ` with `A: m×k`, `B: n×k` → `C: m×n`.
///
/// Used by the convolution input gradient (`dcol = Wᵀ · dY` family) and the
/// dense-layer backward pass. Row-times-row dot products vectorize well.
pub fn matmul_tb(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "A");
    let (n, kb) = dims2(b, "B");
    assert_eq!(
        k, kb,
        "matmul_tb inner dims disagree: A is {m}×{k}, Bᵀ is {kb}×{n}"
    );
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &av[i * k..(i + 1) * k];
        for (j, c) in crow.iter_mut().enumerate() {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *c = acc;
        }
    });
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// Reference O(mnk) triple loop used by tests to validate the blocked kernels.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "A");
    let (kb, n) = dims2(b, "B");
    assert_eq!(k, kb);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(Shape::d2(m, n), out)
}

fn dims2(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "matmul operand {name} must be rank 2, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::uniform;
    use crate::ops::transpose2;
    use proptest::prelude::*;

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn identity() {
        let a = uniform(Shape::d2(4, 4), -1.0, 1.0, 7);
        let mut eye = Tensor::zeros(Shape::d2(4, 4));
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert!(close(&matmul(&a, &eye), &a, 1e-6));
        assert!(close(&matmul(&eye, &a), &a, 1e-6));
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn blocked_matches_naive_beyond_kblock() {
        // k > KBLOCK exercises the blocking loop.
        let a = uniform(Shape::d2(5, KBLOCK + 37), -1.0, 1.0, 1);
        let b = uniform(Shape::d2(KBLOCK + 37, 9), -1.0, 1.0, 2);
        assert!(close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-4));
    }

    #[test]
    fn ta_and_tb_match_explicit_transpose() {
        let a = uniform(Shape::d2(6, 5), -1.0, 1.0, 3);
        let b = uniform(Shape::d2(6, 7), -1.0, 1.0, 4);
        // Aᵀ·B
        let want = matmul_naive(&transpose2(&a), &b);
        assert!(close(&matmul_ta(&a, &b), &want, 1e-4));
        // A·Bᵀ — reuse shapes: (5×6)·(7×6)ᵀ
        let a2 = transpose2(&a);
        let b2 = transpose2(&b);
        let want = matmul_naive(&a2, &b);
        assert!(close(&matmul_tb(&a2, &b2), &want, 1e-4));
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(4, 2));
        matmul(&a, &b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_blocked_equals_naive(m in 1usize..12, k in 1usize..48, n in 1usize..12, seed in 0u64..1000) {
            let a = uniform(Shape::d2(m, k), -2.0, 2.0, seed);
            let b = uniform(Shape::d2(k, n), -2.0, 2.0, seed.wrapping_add(1));
            prop_assert!(close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-4));
        }

        #[test]
        fn prop_ta_tb_consistency(m in 1usize..10, k in 1usize..24, n in 1usize..10, seed in 0u64..1000) {
            let a = uniform(Shape::d2(m, k), -2.0, 2.0, seed);
            let b = uniform(Shape::d2(k, n), -2.0, 2.0, seed.wrapping_add(9));
            let c = matmul(&a, &b);
            // C = (Aᵀ)ᵀ·B via matmul_ta on Aᵀ.
            let c_ta = matmul_ta(&transpose2(&a), &b);
            // C = A·(Bᵀ)ᵀ via matmul_tb on Bᵀ.
            let c_tb = matmul_tb(&a, &transpose2(&b));
            prop_assert!(close(&c, &c_ta, 1e-4));
            prop_assert!(close(&c, &c_tb, 1e-4));
        }
    }
}
