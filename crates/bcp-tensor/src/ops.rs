//! Elementwise and reduction operations on [`Tensor`].

use crate::shape::Shape;
use crate::tensor::Tensor;

/// `a + b`, elementwise.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x + y)
}

/// `a - b`, elementwise.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x - y)
}

/// `a * b`, elementwise (Hadamard).
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x * y)
}

/// `a * s`, scalar scale.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place `y += alpha * x` (BLAS axpy).
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) {
    assert_eq!(x.shape(), y.shape(), "axpy shape mismatch");
    for (yi, &xi) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *yi += alpha * xi;
    }
}

/// Sum of all elements.
pub fn sum(a: &Tensor) -> f32 {
    a.as_slice().iter().sum()
}

/// Arithmetic mean of all elements; 0 for an empty tensor.
pub fn mean(a: &Tensor) -> f32 {
    if a.numel() == 0 {
        0.0
    } else {
        sum(a) / a.numel() as f32
    }
}

/// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
pub fn max(a: &Tensor) -> f32 {
    a.as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
}

/// Index of the maximum element of a rank-1 tensor (first on ties).
pub fn argmax(a: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in a.iter().enumerate() {
        if v > a[best] {
            best = i;
        }
    }
    best
}

/// Row-wise softmax of a rank-2 tensor (rows = samples, cols = logits),
/// numerically stabilised by subtracting the row max.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(
        logits.shape().rank(),
        2,
        "softmax_rows expects rank-2 logits"
    );
    let (rows, cols) = (logits.shape().dim(0), logits.shape().dim(1));
    let mut out = vec![0.0f32; rows * cols];
    let src = logits.as_slice();
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for c in 0..cols {
            let e = (row[c] - m).exp();
            out[r * cols + c] = e;
            denom += e;
        }
        for c in 0..cols {
            out[r * cols + c] /= denom;
        }
    }
    Tensor::from_vec(logits.shape().clone(), out)
}

/// Transpose a rank-2 tensor.
pub fn transpose2(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "transpose2 expects rank 2");
    let (rows, cols) = (a.shape().dim(0), a.shape().dim(1));
    let src = a.as_slice();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = src[r * cols + c];
        }
    }
    Tensor::from_vec(Shape::d2(cols, rows), out)
}

/// Mean and (biased) variance per channel of an NCHW tensor, reducing over
/// N, H, W — the statistics batch-norm needs.
#[allow(clippy::needless_range_loop)] // symmetric per-channel loops read clearer
pub fn channel_mean_var(x: &Tensor) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(x.shape().rank(), 4, "channel_mean_var expects NCHW");
    let (n, c, h, w) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let plane = h * w;
    let count = (n * plane) as f32;
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    let src = x.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * plane;
            let s: f32 = src[base..base + plane].iter().sum();
            mean[ci] += s;
        }
    }
    for m in &mut mean {
        *m /= count;
    }
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * plane;
            let m = mean[ci];
            let s: f32 = src[base..base + plane]
                .iter()
                .map(|&v| (v - m) * (v - m))
                .sum();
            var[ci] += s;
        }
    }
    for v in &mut var {
        *v /= count;
    }
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v)
    }

    #[test]
    fn arithmetic() {
        let a = t(vec![1.0, 2.0, 3.0]);
        let b = t(vec![4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(scale(&a, -1.0).as_slice(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = t(vec![1.0, 1.0]);
        let mut y = t(vec![2.0, 3.0]);
        axpy(0.5, &x, &mut y);
        assert_eq!(y.as_slice(), &[2.5, 3.5]);
    }

    #[test]
    fn reductions() {
        let a = t(vec![1.0, -2.0, 4.0]);
        assert_eq!(sum(&a), 3.0);
        assert_eq!(mean(&a), 1.0);
        assert_eq!(max(&a), 4.0);
        assert_eq!(argmax(a.as_slice()), 2);
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order() {
        let l = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, 100.0, 100.0, 100.0]);
        let s = softmax_rows(&l);
        for r in 0..2 {
            let row = &s.as_slice()[r * 3..(r + 1) * 3];
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
        }
        // Monotone in logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
        // Large equal logits do not overflow.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(Shape::d2(2, 3), (0..6).map(|i| i as f32).collect());
        let tt = transpose2(&transpose2(&a));
        assert_eq!(tt, a);
        assert_eq!(transpose2(&a).at(&[2, 1]), a.at(&[1, 2]));
    }

    #[test]
    fn channel_stats() {
        // 1 sample, 2 channels of 2×1: channel 0 = [1, 3], channel 1 = [2, 2].
        let x = Tensor::from_vec(Shape::nchw(1, 2, 2, 1), vec![1.0, 3.0, 2.0, 2.0]);
        let (m, v) = channel_mean_var(&x);
        assert_eq!(m, vec![2.0, 2.0]);
        assert_eq!(v, vec![1.0, 0.0]);
    }
}
