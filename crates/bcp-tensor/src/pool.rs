//! Max-pooling with argmax bookkeeping.
//!
//! The forward pass records, for every output cell, the flat input offset of
//! the winning element; the backward pass routes the gradient to exactly that
//! offset. On binarized feature maps (±1) max-pooling degenerates into a
//! boolean OR — the property the FINN pooling unit exploits — which the
//! `bcp-finn` crate cross-checks against this reference implementation.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Geometry of a max-pool layer (square window).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaxPoolSpec {
    /// Window extent.
    pub k: usize,
    /// Window stride (BinaryCoP uses non-overlapping 2×2, i.e. k = stride = 2).
    pub stride: usize,
}

impl MaxPoolSpec {
    /// The paper's 2×2/stride-2 pooling.
    pub fn two_by_two() -> Self {
        MaxPoolSpec { k: 2, stride: 2 }
    }

    /// Output spatial size (no padding — windows must tile within bounds).
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(h >= self.k && w >= self.k, "pool window larger than input");
        (
            (h - self.k) / self.stride + 1,
            (w - self.k) / self.stride + 1,
        )
    }
}

/// Forward max-pool over an NCHW tensor. Returns the pooled tensor and the
/// per-output flat argmax offsets into the input buffer.
pub fn maxpool2d_forward(x: &Tensor, spec: MaxPoolSpec) -> (Tensor, Vec<usize>) {
    assert_eq!(x.shape().rank(), 4, "maxpool input must be NCHW");
    let (n, c, h, w) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let (oh, ow) = spec.out_hw(h, w);
    let src = x.as_slice();
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let mut arg = Vec::with_capacity(n * c * oh * ow);
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = 0usize;
                    for ky in 0..spec.k {
                        let iy = oy * spec.stride + ky;
                        for kx in 0..spec.k {
                            let ix = ox * spec.stride + kx;
                            let off = plane + iy * w + ix;
                            if src[off] > best {
                                best = src[off];
                                best_off = off;
                            }
                        }
                    }
                    out.push(best);
                    arg.push(best_off);
                }
            }
        }
    }
    (Tensor::from_vec(Shape::nchw(n, c, oh, ow), out), arg)
}

/// Backward max-pool: route each output gradient to its argmax input cell.
///
/// `in_shape` must be the forward input's shape; `argmax` the offsets the
/// forward pass returned.
pub fn maxpool2d_backward(dy: &Tensor, argmax: &[usize], in_shape: &Shape) -> Tensor {
    assert_eq!(
        dy.numel(),
        argmax.len(),
        "argmax bookkeeping ({}) does not match output grad ({})",
        argmax.len(),
        dy.numel()
    );
    let mut dx = Tensor::zeros(in_shape.clone());
    let d = dx.as_mut_slice();
    for (&g, &off) in dy.as_slice().iter().zip(argmax) {
        d[off] += g;
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::uniform;
    use proptest::prelude::*;

    #[test]
    fn known_two_by_two() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 4, 4),
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let (y, arg) = maxpool2d_forward(&x, MaxPoolSpec::two_by_two());
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4., 8., 12., 16.]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1., 9., 3., 4.]);
        let (y, arg) = maxpool2d_forward(&x, MaxPoolSpec::two_by_two());
        assert_eq!(y.as_slice(), &[9.0]);
        let dy = Tensor::from_vec(y.shape().clone(), vec![5.0]);
        let dx = maxpool2d_backward(&dy, &arg, x.shape());
        assert_eq!(dx.as_slice(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn pool_on_binary_maps_is_or() {
        // On ±1 maps, max == OR (any +1 wins).
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 2, 4),
            vec![-1., -1., 1., -1., -1., -1., -1., -1.],
        );
        let (y, _) = maxpool2d_forward(&x, MaxPoolSpec::two_by_two());
        assert_eq!(y.as_slice(), &[-1.0, 1.0]);
    }

    #[test]
    fn overlapping_windows() {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 3, 3), (0..9).map(|i| i as f32).collect());
        let spec = MaxPoolSpec { k: 2, stride: 1 };
        let (y, _) = maxpool2d_forward(&x, spec);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4., 5., 7., 8.]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_gradient_mass_preserved(n in 1usize..3, c in 1usize..3,
                                        h in 2usize..7, w in 2usize..7, seed in 0u64..300) {
            // Non-overlapping 2×2 pooling: every output grad lands on exactly
            // one input cell, so total gradient mass is conserved.
            prop_assume!(h >= 2 && w >= 2);
            let x = uniform(Shape::nchw(n, c, h, w), -1.0, 1.0, seed);
            let (y, arg) = maxpool2d_forward(&x, MaxPoolSpec::two_by_two());
            let dy = uniform(y.shape().clone(), -1.0, 1.0, seed + 1);
            let dx = maxpool2d_backward(&dy, &arg, x.shape());
            let a: f32 = dy.as_slice().iter().sum();
            let b: f32 = dx.as_slice().iter().sum();
            prop_assert!((a - b).abs() < 1e-4);
        }

        #[test]
        fn prop_pool_upper_bounds_inputs(h in 2usize..7, w in 2usize..7, seed in 0u64..300) {
            let x = uniform(Shape::nchw(1, 1, h, w), -1.0, 1.0, seed);
            let (y, arg) = maxpool2d_forward(&x, MaxPoolSpec::two_by_two());
            for (&v, &off) in y.as_slice().iter().zip(&arg) {
                prop_assert_eq!(v, x.as_slice()[off]);
            }
        }
    }
}
