//! Tensor shapes and convolution geometry helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a [`crate::Tensor`]: a list of dimension extents, outermost
/// first. Rank-4 shapes follow the NCHW convention (batch, channels, height,
/// width) used throughout the BinaryCoP pipeline.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Rank-1 shape.
    pub fn d1(a: usize) -> Self {
        Shape(vec![a])
    }

    /// Rank-2 shape (rows, cols).
    pub fn d2(a: usize, b: usize) -> Self {
        Shape(vec![a, b])
    }

    /// Rank-3 shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        // audit: allow(alloc): a three-element dims vector is the cost of
        // constructing a shape at all; callers on hot paths build one per
        // request, not per element.
        Shape(vec![a, b, c])
    }

    /// Rank-4 NCHW shape.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`. Panics when out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-index. Panics if the index rank mismatches or
    /// any coordinate is out of bounds (debug builds only for the bounds).
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0usize;
        for (i, (&ix, &ext)) in index.iter().zip(self.0.iter()).enumerate() {
            debug_assert!(
                ix < ext,
                "index {ix} out of bounds for dim {i} (extent {ext})"
            );
            off = off * ext + ix;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", parts.join("×"))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

/// Output spatial extent of a convolution/pooling window along one axis.
///
/// `extent` input size, `k` kernel size, `pad` symmetric zero padding,
/// `stride` window step. Panics when the window does not fit at all.
pub fn conv_out_dim(extent: usize, k: usize, pad: usize, stride: usize) -> usize {
    let padded = extent + 2 * pad;
    assert!(
        padded >= k && stride > 0,
        "convolution window k={k} (stride {stride}) does not fit into padded extent {padded}"
    );
    (padded - k) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::nchw(2, 3, 32, 32);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.numel(), 2 * 3 * 32 * 32);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
        let s1 = Shape::d1(7);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::d3(3, 4, 5);
        let strides = s.strides();
        for a in 0..3 {
            for b in 0..4 {
                for c in 0..5 {
                    let expect = a * strides[0] + b * strides[1] + c * strides[2];
                    assert_eq!(s.offset(&[a, b, c]), expect);
                }
            }
        }
    }

    #[test]
    fn conv_out_dims_match_paper_cnv() {
        // CNV on 32×32: three conv groups, K=3 no padding, 2×2 maxpool after
        // groups 1 and 2 (Sec. IV-A / Table I).
        let d = conv_out_dim(32, 3, 0, 1); // conv1_1 -> 30
        assert_eq!(d, 30);
        let d = conv_out_dim(d, 3, 0, 1); // conv1_2 -> 28
        assert_eq!(d, 28);
        let d = conv_out_dim(d, 2, 0, 2); // pool -> 14
        assert_eq!(d, 14);
        let d = conv_out_dim(d, 3, 0, 1); // conv2_1 -> 12
        assert_eq!(d, 12);
        let d = conv_out_dim(d, 3, 0, 1); // conv2_2 -> 10
        assert_eq!(d, 10);
        let d = conv_out_dim(d, 2, 0, 2); // pool -> 5 (the Grad-CAM 5×5 map)
        assert_eq!(d, 5);
        let d = conv_out_dim(d, 3, 0, 1); // conv3_1 -> 3
        assert_eq!(d, 3);
        let d = conv_out_dim(d, 3, 0, 1); // conv3_2 -> 1
        assert_eq!(d, 1);
    }

    #[test]
    #[should_panic]
    fn conv_out_dim_rejects_oversized_kernel() {
        conv_out_dim(2, 5, 0, 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::d2(3, 4).to_string(), "[3×4]");
    }
}
