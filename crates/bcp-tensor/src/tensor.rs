//! Contiguous row-major `f32` tensor.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32`.
///
/// Rank-4 tensors follow the NCHW convention. All operations that combine
/// two tensors panic on shape mismatch with a descriptive message — shape
/// errors in this workspace are programming errors, not runtime conditions.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

/// The default tensor is an allocation-free rank-0 placeholder, meant
/// only to be swapped out of a slot (`std::mem::take`) and overwritten.
/// It violates the `numel() == data.len()` invariant of real tensors
/// (an empty `Shape` has `numel() == 1` by the empty product), so it
/// must never be fed into kernels — the serving engine uses it solely
/// to move frames out of requests without cloning.
impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            shape: Shape(Vec::new()),
            data: Vec::new(),
        }
    }
}

impl Tensor {
    /// Tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Tensor of ones.
    pub fn ones(shape: Shape) -> Self {
        Self::full(shape, 1.0)
    }

    /// Build from an existing buffer. Panics when the length disagrees with
    /// the shape.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        // audit: allow(panic): documented construction contract; hot-path
        // callers (the gateway codec) validate len == shape product before
        // building the buffer, so this cannot fire on wire input.
        assert_eq!(
            shape.numel(),
            data.len(),
            "buffer of {} elements cannot back shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable flat view of the backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element by multi-index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element by multi-index.
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: Shape) -> Self {
        assert_eq!(
            self.shape.numel(),
            shape.numel(),
            "cannot reshape {} into {shape}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Borrowing variant of [`Tensor::reshape`].
    pub fn reshaped(&self, shape: Shape) -> Self {
        self.clone().reshape(shape)
    }

    /// Apply `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combine with `other` elementwise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Extract sample `n` of a rank-4 (NCHW) tensor as a rank-3 (CHW) tensor.
    pub fn sample(&self, n: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 4, "sample() requires an NCHW tensor");
        let [bn, c, h, w] = [
            self.shape.dim(0),
            self.shape.dim(1),
            self.shape.dim(2),
            self.shape.dim(3),
        ];
        assert!(n < bn, "sample index {n} out of range (batch {bn})");
        let stride = c * h * w;
        Tensor::from_vec(
            Shape::d3(c, h, w),
            self.data[n * stride..(n + 1) * stride].to_vec(),
        )
    }

    /// Stack rank-3 (CHW) tensors into a rank-4 (NCHW) batch. All samples
    /// must share a shape; panics on an empty input.
    pub fn stack(samples: &[Tensor]) -> Tensor {
        assert!(!samples.is_empty(), "cannot stack zero tensors");
        let s0 = samples[0].shape().clone();
        assert_eq!(s0.rank(), 3, "stack() expects CHW samples");
        let mut data = Vec::with_capacity(samples.len() * s0.numel());
        for s in samples {
            assert_eq!(*s.shape(), s0, "stack shape mismatch");
            data.extend_from_slice(s.as_slice());
        }
        Tensor::from_vec(
            Shape::nchw(samples.len(), s0.dim(0), s0.dim(1), s0.dim(2)),
            data,
        )
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, …, {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(t.numel(), 6);
        *t.at_mut(&[1, 2]) = 5.0;
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.as_slice()[5], 5.0);
    }

    #[test]
    #[should_panic(expected = "buffer of 3 elements")]
    fn from_vec_checks_length() {
        Tensor::from_vec(Shape::d2(2, 2), vec![0.0; 3]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(Shape::d1(3), vec![1.0, -2.0, 3.0]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.as_slice(), &[2.0, -4.0, 6.0]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[3.0, -6.0, 9.0]);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec(Shape::d2(2, 3), (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshape(Shape::d3(3, 2, 1));
        assert_eq!(r.at(&[2, 1, 0]), 5.0);
        assert_eq!(r.reshape(Shape::d2(2, 3)), t);
    }

    #[test]
    fn sample_and_stack_roundtrip() {
        let batch = Tensor::from_vec(Shape::nchw(2, 1, 2, 2), (0..8).map(|i| i as f32).collect());
        let s0 = batch.sample(0);
        let s1 = batch.sample(1);
        assert_eq!(s1.at(&[0, 1, 1]), 7.0);
        let re = Tensor::stack(&[s0, s1]);
        assert_eq!(re, batch);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_bad_numel() {
        Tensor::zeros(Shape::d1(5)).reshape(Shape::d2(2, 3));
    }
}
