//! The collector: turns drained [`TraceRecord`]s into span trees and the
//! waterfall/flamegraph artifacts.
//!
//! Two export formats:
//!
//! * **Collapsed-stack text** ([`TraceSet::to_folded`]) — the
//!   `stack;frames count` format consumed by `inferno`, `flamegraph.pl`
//!   and speedscope; counts are nanoseconds summed across requests, so
//!   the flame widths are time, not sample counts.
//! * **Self-contained JSONL** ([`TraceSet::to_jsonl`]) — one record per
//!   line with absolute stamps, per-segment durations and per-stage
//!   compute sub-spans; enough to rebuild any waterfall offline.

use crate::record::{Segment, TraceOutcome, TraceRecord, EVENTS, SEGMENTS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One node of a request's span tree: a named interval with children
/// that tile (a subset of) it.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name (`request`, a segment name, or a pipeline stage name).
    pub name: String,
    /// Start, nanoseconds since tracer epoch.
    pub start_ns: u64,
    /// End, nanoseconds since tracer epoch.
    pub end_ns: u64,
    /// Child spans, in time order, each inside `[start_ns, end_ns]`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Span duration.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Build the span tree of one record: a `request` root, one child per
/// reached segment, and per-pipeline-stage grandchildren inside
/// `compute` when the batch ran the streaming pipeline (stage sub-spans
/// are laid out sequentially, scaled to fill the measured compute span in
/// proportion to their busy time).
pub fn span_tree(record: &TraceRecord) -> Option<SpanNode> {
    let start = record.stamp(crate::TraceEvent::Enqueue)?;
    let mut children = Vec::new();
    for seg in SEGMENTS {
        let (from, to) = seg.bounds();
        let (Some(s), Some(e)) = (record.stamp(from), record.stamp(to)) else {
            continue;
        };
        let mut node = SpanNode {
            name: seg.name().to_string(),
            start_ns: s,
            end_ns: e,
            children: Vec::new(),
        };
        if seg == Segment::Compute {
            if let Some(stages) = &record.stage_ns {
                node.children = scale_stages(stages, s, e);
            }
        }
        children.push(node);
    }
    let end = children.last().map_or(start, |c| c.end_ns);
    Some(SpanNode {
        name: "request".to_string(),
        start_ns: start,
        end_ns: end.max(start),
        children,
    })
}

/// Lay the per-stage busy times out back-to-back inside `[start, end]`,
/// scaled so they fill the span in proportion to their shares.
fn scale_stages(stages: &[(String, u64)], start: u64, end: u64) -> Vec<SpanNode> {
    let total: u128 = stages.iter().map(|(_, ns)| u128::from(*ns)).sum();
    if total == 0 {
        return Vec::new();
    }
    let span = u128::from(end.saturating_sub(start));
    let mut out = Vec::with_capacity(stages.len());
    let mut cursor = start;
    let mut acc: u128 = 0;
    for (i, (name, ns)) in stages.iter().enumerate() {
        acc = acc.saturating_add(u128::from(*ns));
        let next = if i.saturating_add(1) == stages.len() {
            end
        } else {
            let offset = span.saturating_mul(acc).checked_div(total).unwrap_or(0);
            start.saturating_add(u64::try_from(offset).unwrap_or(u64::MAX))
        };
        out.push(SpanNode {
            name: name.clone(),
            start_ns: cursor,
            end_ns: next.max(cursor),
            children: Vec::new(),
        });
        cursor = next.max(cursor);
    }
    out
}

/// A drained batch of trace records plus the collector's accounting.
#[derive(Clone, Debug, Default)]
pub struct TraceSet {
    /// Every drained record, in drain order.
    pub records: Vec<TraceRecord>,
    /// Records lost to full rings (from the tracer's drop counters).
    pub dropped: u64,
}

impl TraceSet {
    /// Wrap drained records.
    pub fn new(records: Vec<TraceRecord>, dropped: u64) -> TraceSet {
        TraceSet { records, dropped }
    }

    /// Completed (fully-stamped, `Ok`) records only.
    pub fn completed(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.outcome == TraceOutcome::Ok && r.is_complete())
    }

    /// Collapsed-stack export: `request;<segment>[;<stage>] <ns>` lines,
    /// nanoseconds summed over all completed records, sorted for
    /// determinism. Feed to `inferno-flamegraph` or paste into
    /// speedscope.
    pub fn to_folded(&self) -> String {
        let mut stacks: BTreeMap<String, u128> = BTreeMap::new();
        for record in self.completed() {
            let Some(tree) = span_tree(record) else {
                continue;
            };
            for seg in &tree.children {
                if seg.children.is_empty() {
                    let key = format!("request;{}", seg.name);
                    add_ns(&mut stacks, key, seg.dur_ns());
                } else {
                    for stage in &seg.children {
                        let key = format!("request;{};{}", seg.name, stage.name);
                        add_ns(&mut stacks, key, stage.dur_ns());
                    }
                }
            }
        }
        let mut out = String::new();
        for (stack, ns) in stacks {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }

    /// Self-contained JSONL export: one record per line (all outcomes,
    /// not just completed ones), in drain order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Per-request waterfall rendering of the slowest completed requests
    /// (up to `limit`), one bar per segment — the human-readable
    /// companion to the folded export.
    pub fn render_waterfall(&self, limit: usize) -> String {
        let mut completed: Vec<&TraceRecord> = self.completed().collect();
        completed.sort_by_key(|r| std::cmp::Reverse(r.end_to_end_ns().unwrap_or(0)));
        completed.truncate(limit);
        let mut out = String::new();
        const WIDTH: usize = 48;
        const GLYPHS: [char; 5] = ['\u{2591}', '\u{2592}', '\u{2593}', '\u{2588}', '\u{2580}'];
        let _ = writeln!(
            out,
            "waterfall (slowest {} of {} completed; {} = queue_wait, {} = batch_wait, {} = dispatch, {} = compute, {} = delivery)",
            completed.len(),
            self.completed().count(),
            GLYPHS[0],
            GLYPHS[1],
            GLYPHS[2],
            GLYPHS[3],
            GLYPHS[4],
        );
        for r in completed {
            let total = r.end_to_end_ns().unwrap_or(0).max(1);
            let mut bar = String::new();
            for (seg, glyph) in SEGMENTS.iter().zip(GLYPHS) {
                let ns = r.segment_ns(*seg).unwrap_or(0);
                let cells = (u128::from(ns))
                    .saturating_mul(WIDTH as u128)
                    .checked_div(u128::from(total))
                    .unwrap_or(0) as usize;
                for _ in 0..cells {
                    bar.push(glyph);
                }
            }
            let width = WIDTH;
            let _ = writeln!(
                out,
                "  #{:<6} {:>9.3} ms  |{bar:<width$}|  worker {} batch {}",
                r.id,
                total as f64 / 1e6,
                r.worker,
                r.batch_size,
            );
        }
        out
    }
}

fn add_ns(stacks: &mut BTreeMap<String, u128>, key: String, ns: u64) {
    let slot = stacks.entry(key).or_insert(0);
    *slot = slot.saturating_add(u128::from(ns));
}

/// Sanity-check a record set the way the integrity tests do: stamps
/// non-decreasing in lifecycle order, unique ids, and (for completed
/// records) segment sums equal to end-to-end latency. Returns an error
/// message describing the first violation.
pub fn audit(records: &[TraceRecord]) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    for r in records {
        if !seen.insert(r.id) {
            return Err(format!(
                "trace id {} has more than one terminal record",
                r.id
            ));
        }
        let mut last = 0u64;
        for e in EVENTS {
            if let Some(t) = r.stamp(e) {
                if t < last {
                    return Err(format!(
                        "trace {}: stamp {} ({}) precedes an earlier event",
                        r.id,
                        t,
                        e.name()
                    ));
                }
                last = t;
            }
        }
        if r.outcome == TraceOutcome::Ok {
            if !r.is_complete() {
                return Err(format!("trace {}: Ok outcome but missing stamps", r.id));
            }
            let sum: u64 = SEGMENTS
                .iter()
                .filter_map(|&s| r.segment_ns(s))
                .fold(0, u64::saturating_add);
            let e2e = r.end_to_end_ns().unwrap_or(0);
            if sum != e2e {
                return Err(format!(
                    "trace {}: segments sum to {sum} ns but end-to-end is {e2e} ns",
                    r.id
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::record::{TraceEvent, N_EVENTS};
    use std::sync::Arc;

    fn record(id: u64, base: u64) -> TraceRecord {
        let mut r = TraceRecord::new(id);
        for i in 0..N_EVENTS {
            r.stamps[i] = base + 100 * (i as u64 + 1);
        }
        r.outcome = TraceOutcome::Ok;
        r.worker = 0;
        r.batch_size = 2;
        r
    }

    #[test]
    fn span_tree_tiles_the_request() {
        let r = record(0, 0);
        let tree = span_tree(&r).unwrap();
        assert_eq!(tree.name, "request");
        assert_eq!(tree.children.len(), 5);
        let child_sum: u64 = tree.children.iter().map(SpanNode::dur_ns).sum();
        assert_eq!(child_sum, tree.dur_ns());
        for w in tree.children.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "segments must chain");
        }
    }

    #[test]
    fn stage_subspans_fill_the_compute_span() {
        let mut r = record(0, 0);
        r.stage_ns = Some(Arc::new(vec![
            ("conv0".into(), 30),
            ("pool".into(), 10),
            ("fc".into(), 60),
        ]));
        let tree = span_tree(&r).unwrap();
        let compute = tree
            .children
            .iter()
            .find(|c| c.name == "compute")
            .expect("compute span");
        assert_eq!(compute.children.len(), 3);
        assert_eq!(compute.children[0].start_ns, compute.start_ns);
        assert_eq!(compute.children.last().unwrap().end_ns, compute.end_ns);
        let sum: u64 = compute.children.iter().map(SpanNode::dur_ns).sum();
        assert_eq!(sum, compute.dur_ns());
    }

    #[test]
    fn folded_output_sums_nanoseconds_across_records() {
        let set = TraceSet::new(vec![record(0, 0), record(1, 1000)], 0);
        let folded = set.to_folded();
        // Each record contributes 100 ns per segment.
        assert!(folded.contains("request;queue_wait 200"));
        assert!(folded.contains("request;compute 200"));
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 5);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "folded output must be deterministic");
    }

    #[test]
    fn folded_output_breaks_compute_into_stages() {
        let mut r = record(0, 0);
        r.stage_ns = Some(Arc::new(vec![("conv0".into(), 1), ("fc".into(), 1)]));
        let set = TraceSet::new(vec![r], 0);
        let folded = set.to_folded();
        assert!(folded.contains("request;compute;conv0 50"));
        assert!(folded.contains("request;compute;fc 50"));
        assert!(!folded.contains("request;compute 100"));
    }

    #[test]
    fn audit_accepts_good_and_rejects_bad() {
        assert!(audit(&[record(0, 0), record(1, 50)]).is_ok());

        let dup = vec![record(0, 0), record(0, 10)];
        assert!(audit(&dup).unwrap_err().contains("more than one terminal"));

        let mut bad = record(2, 0);
        bad.stamps[TraceEvent::ComputeEnd as usize] = 1; // before ComputeStart
        assert!(audit(&[bad]).unwrap_err().contains("precedes"));

        let mut incomplete = record(3, 0);
        incomplete.stamps[TraceEvent::BatchSeal as usize] = 0;
        assert!(audit(&[incomplete]).unwrap_err().contains("missing stamps"));
    }

    #[test]
    fn waterfall_renders_slowest_first() {
        let fast = record(0, 0);
        let mut slow = record(1, 0);
        slow.stamps[TraceEvent::Deliver as usize] += 10_000;
        let set = TraceSet::new(vec![fast, slow], 0);
        let w = set.render_waterfall(10);
        let pos_slow = w.find("#1").unwrap();
        let pos_fast = w.find("#0").unwrap();
        assert!(pos_slow < pos_fast, "slowest request renders first:\n{w}");
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let set = TraceSet::new(vec![record(0, 0), record(1, 0)], 0);
        assert_eq!(set.to_jsonl().lines().count(), 2);
    }
}
