//! # bcp-trace — request-lifecycle tracing for the serving engine
//!
//! Low-overhead tracing layered on `bcp-telemetry`. Every admitted
//! request can carry a [`TraceRecord`]: a fixed-size vector of
//! nanosecond timestamps stamped at each hand-off of its lifecycle —
//!
//! ```text
//! enqueue → admission_dequeue → batch_seal → worker_dispatch
//!         → compute_start → compute_end → deliver
//! ```
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero cost when off.** A disabled tracer is `None`; the hot path
//!    pays a single branch per stamp site. Head sampling (default 1/64)
//!    keeps the enabled cost within the bench gate's 3%.
//! 2. **No shared mutation on the hot path.** The record travels *with*
//!    the request (inside the engine's channels); stamps are plain
//!    stores by the owning thread. Only finished records cross threads,
//!    through lock-free [`Ring`]s — and a full ring drops-and-counts,
//!    never blocks.
//! 3. **Everything audits.** Stamps are monotone (the collector's
//!    [`audit`] checks), the five [`Segment`]s telescope exactly to the
//!    end-to-end latency, and ring saturation is visible as
//!    `trace.dropped`.
//!
//! The collector side ([`TraceSet`]) turns drained records into span
//! trees, collapsed-stack flamegraph text, JSONL, an ASCII waterfall,
//! and the [`AttributionReport`] that decomposes latency into
//! queue-wait / batch-wait / dispatch / compute / delivery and prices
//! the engine against raw `classify_batch`.

#![deny(unsafe_code)]
#![warn(clippy::arithmetic_side_effects)]
#![warn(missing_docs)]

// Under `--cfg bcp_model` only the lock-free ring is compiled: it is
// the crate's model-checked structure, and the other modules pull in
// wall-clock time and channel machinery the model runtime does not
// provide. See DESIGN.md §"Concurrency invariants".
#[cfg(not(bcp_model))]
pub mod collect;
#[cfg(not(bcp_model))]
pub mod record;
#[cfg(not(bcp_model))]
pub mod report;
// The lock-free ring is the audited `unsafe` allowlist exception
// (BCP101): SAFETY-commented, model-checked and Miri-checked.
#[allow(unsafe_code)]
pub mod ring;
#[cfg(not(bcp_model))]
pub mod sampler;
#[cfg(not(bcp_model))]
pub mod tracer;

#[cfg(not(bcp_model))]
pub use collect::{audit, span_tree, SpanNode, TraceSet};
#[cfg(not(bcp_model))]
pub use record::{
    Segment, TraceEvent, TraceId, TraceOutcome, TraceRecord, EVENTS, N_EVENTS, N_SEGMENTS, SEGMENTS,
};
#[cfg(not(bcp_model))]
pub use report::{AttributionReport, SegmentStats};
pub use ring::Ring;
#[cfg(not(bcp_model))]
pub use sampler::{SampleRow, TimeSeries, TimeSeriesSampler};
#[cfg(not(bcp_model))]
pub use tracer::{stamp, ActiveTrace, TraceConfig, Tracer};
