//! The per-request trace record: a fixed-size timestamp vector stamped at
//! every hand-off, plus the request's final outcome.
//!
//! A record travels *with* its request through the engine (inside the
//! `Request` struct, across the admission and worker channels), so every
//! stamp is written by the thread that currently owns the request — no
//! sharing, no locks, no atomics on the hot path. Only the finished record
//! crosses threads, through a [`Ring`](crate::Ring).

use serde::Serialize;
use std::sync::Arc;

/// Unique id of one sampled request. Allocated from a per-tracer atomic
/// counter; ids are dense over *sampled* requests, not over all requests.
pub type TraceId = u64;

/// The hand-off points of a request's lifecycle, in order. Each sampled
/// request gets one nanosecond timestamp per event (0 = not reached).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum TraceEvent {
    /// `submit()` accepted the request into the admission queue.
    Enqueue = 0,
    /// The batcher dequeued it from the admission queue.
    AdmissionDequeue = 1,
    /// The batcher sealed the micro-batch containing it (size/age flush).
    BatchSeal = 2,
    /// The owning worker received the batch from its queue.
    WorkerDispatch = 3,
    /// Inference over the batch began.
    ComputeStart = 4,
    /// Inference over the batch finished.
    ComputeEnd = 5,
    /// The response (success or error) was delivered into the slot.
    Deliver = 6,
}

/// Number of [`TraceEvent`] stamps in a record.
pub const N_EVENTS: usize = 7;

/// All events, in lifecycle order.
pub const EVENTS: [TraceEvent; N_EVENTS] = [
    TraceEvent::Enqueue,
    TraceEvent::AdmissionDequeue,
    TraceEvent::BatchSeal,
    TraceEvent::WorkerDispatch,
    TraceEvent::ComputeStart,
    TraceEvent::ComputeEnd,
    TraceEvent::Deliver,
];

impl TraceEvent {
    /// Stable lowercase name (used in JSONL export).
    pub fn name(self) -> &'static str {
        match self {
            TraceEvent::Enqueue => "enqueue",
            TraceEvent::AdmissionDequeue => "admission_dequeue",
            TraceEvent::BatchSeal => "batch_seal",
            TraceEvent::WorkerDispatch => "worker_dispatch",
            TraceEvent::ComputeStart => "compute_start",
            TraceEvent::ComputeEnd => "compute_end",
            TraceEvent::Deliver => "deliver",
        }
    }
}

/// The five consecutive latency segments a completed request decomposes
/// into. Segment *i* spans two stamps, and the segments tile the
/// end-to-end interval exactly: their sum telescopes to
/// `deliver − enqueue`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// `enqueue → admission_dequeue`: waiting in the admission queue.
    QueueWait = 0,
    /// `admission_dequeue → batch_seal`: waiting for the batch to fill.
    BatchWait = 1,
    /// `batch_seal → compute_start`: worker-queue hand-off plus the
    /// pre-inference work (canary gate, expiry sweep).
    Dispatch = 2,
    /// `compute_start → compute_end`: inference proper.
    Compute = 3,
    /// `compute_end → deliver`: result matching and slot completion.
    Delivery = 4,
}

/// Number of [`Segment`]s.
pub const N_SEGMENTS: usize = 5;

/// All segments, in order.
pub const SEGMENTS: [Segment; N_SEGMENTS] = [
    Segment::QueueWait,
    Segment::BatchWait,
    Segment::Dispatch,
    Segment::Compute,
    Segment::Delivery,
];

impl Segment {
    /// Stable lowercase name (used in reports and folded stacks).
    pub fn name(self) -> &'static str {
        match self {
            Segment::QueueWait => "queue_wait",
            Segment::BatchWait => "batch_wait",
            Segment::Dispatch => "dispatch",
            Segment::Compute => "compute",
            Segment::Delivery => "delivery",
        }
    }

    /// The `(from, to)` stamps bounding this segment.
    pub fn bounds(self) -> (TraceEvent, TraceEvent) {
        match self {
            Segment::QueueWait => (TraceEvent::Enqueue, TraceEvent::AdmissionDequeue),
            Segment::BatchWait => (TraceEvent::AdmissionDequeue, TraceEvent::BatchSeal),
            Segment::Dispatch => (TraceEvent::BatchSeal, TraceEvent::ComputeStart),
            Segment::Compute => (TraceEvent::ComputeStart, TraceEvent::ComputeEnd),
            Segment::Delivery => (TraceEvent::ComputeEnd, TraceEvent::Deliver),
        }
    }
}

/// How a traced request ended. Mirrors the engine's outcome taxonomy
/// without depending on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TraceOutcome {
    /// Classified and delivered inside its deadline.
    Ok,
    /// Refused at admission (queue full, reject policy).
    Rejected,
    /// Evicted from the queue by a newer request (shed policy).
    Shed,
    /// Deadline passed before a result could be delivered.
    Expired,
    /// Failed (worker fault, no healthy workers, shutdown).
    Failed,
}

impl TraceOutcome {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Rejected => "rejected",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Expired => "expired",
            TraceOutcome::Failed => "failed",
        }
    }
}

/// One finished request trace. `stamps[e]` is nanoseconds since the
/// tracer's epoch at event `e`, or 0 when the lifecycle ended before `e`
/// (the epoch is taken strictly before any stamp, so a real stamp is
/// never 0).
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Sampled-request id, unique per tracer.
    pub id: TraceId,
    /// Nanoseconds since tracer epoch, one per [`TraceEvent`].
    pub stamps: [u64; N_EVENTS],
    /// How the request ended.
    pub outcome: TraceOutcome,
    /// Worker that computed it (`usize::MAX` when it never reached one).
    pub worker: usize,
    /// Size of the micro-batch it rode in (0 when it never joined one).
    pub batch_size: u32,
    /// Per-pipeline-stage busy time inside the compute segment, when the
    /// batch ran through the streaming pipeline: `(stage name, ns/frame)`.
    /// Shared across the batch's sampled records.
    pub stage_ns: Option<Arc<Vec<(String, u64)>>>,
}

impl TraceRecord {
    /// Fresh record with no stamps.
    pub fn new(id: TraceId) -> TraceRecord {
        TraceRecord {
            id,
            stamps: [0; N_EVENTS],
            outcome: TraceOutcome::Failed,
            worker: usize::MAX,
            batch_size: 0,
            stage_ns: None,
        }
    }

    /// Timestamp of `event`, or `None` when the lifecycle never got there.
    // audit: cold — record readback feeds the profile CLI, never the serving path (shares its name with ActiveTrace::stamp)
    pub fn stamp(&self, event: TraceEvent) -> Option<u64> {
        let v = self.stamps[event as usize];
        (v != 0).then_some(v)
    }

    /// The last stamped event (every record has at least `Enqueue` —
    /// un-enqueued rejects are stamped at submit time).
    pub fn last_event(&self) -> TraceEvent {
        let mut last = TraceEvent::Enqueue;
        for e in EVENTS {
            if self.stamp(e).is_some() {
                last = e;
            }
        }
        last
    }

    /// Duration of `segment` in ns; `None` unless both bounding stamps
    /// exist. Saturates at 0 if the clock stamps ever read out of order.
    pub fn segment_ns(&self, segment: Segment) -> Option<u64> {
        let (from, to) = segment.bounds();
        Some(self.stamp(to)?.saturating_sub(self.stamp(from)?))
    }

    /// End-to-end latency (`deliver − enqueue`); `None` unless delivered.
    pub fn end_to_end_ns(&self) -> Option<u64> {
        Some(
            self.stamp(TraceEvent::Deliver)?
                .saturating_sub(self.stamp(TraceEvent::Enqueue)?),
        )
    }

    /// Whether every lifecycle stamp is present (a fully served request).
    pub fn is_complete(&self) -> bool {
        EVENTS.iter().all(|&e| self.stamp(e).is_some())
    }

    /// One line of JSONL export.
    pub fn to_json_line(&self) -> String {
        use serde::{Map, Value};
        let mut m = Map::new();
        m.insert("id".into(), Value::UInt(self.id));
        m.insert("outcome".into(), Value::Str(self.outcome.name().into()));
        if self.worker != usize::MAX {
            m.insert("worker".into(), Value::UInt(self.worker as u64));
        }
        m.insert("batch_size".into(), Value::UInt(u64::from(self.batch_size)));
        let mut stamps = Map::new();
        for e in EVENTS {
            if let Some(t) = self.stamp(e) {
                stamps.insert(e.name().into(), Value::UInt(t));
            }
        }
        m.insert("stamps_ns".into(), Value::Object(stamps));
        let mut segs = Map::new();
        for s in SEGMENTS {
            if let Some(d) = self.segment_ns(s) {
                segs.insert(s.name().into(), Value::UInt(d));
            }
        }
        m.insert("segments_ns".into(), Value::Object(segs));
        if let Some(stages) = &self.stage_ns {
            let mut st = Map::new();
            for (name, ns) in stages.iter() {
                st.insert(name.clone(), Value::UInt(*ns));
            }
            m.insert("compute_stages_ns".into(), Value::Object(st));
        }
        serde_json::to_string(&Value::Object(m)).expect("trace record json")
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;

    fn complete_record() -> TraceRecord {
        let mut r = TraceRecord::new(3);
        for (i, e) in EVENTS.iter().enumerate() {
            r.stamps[*e as usize] = 100 * (i as u64 + 1);
        }
        r.outcome = TraceOutcome::Ok;
        r.worker = 1;
        r.batch_size = 4;
        r
    }

    #[test]
    fn segments_tile_the_end_to_end_interval() {
        let r = complete_record();
        assert!(r.is_complete());
        let sum: u64 = SEGMENTS.iter().map(|&s| r.segment_ns(s).unwrap()).sum();
        assert_eq!(Some(sum), r.end_to_end_ns());
    }

    #[test]
    fn partial_record_has_partial_segments() {
        let mut r = TraceRecord::new(1);
        r.stamps[TraceEvent::Enqueue as usize] = 10;
        r.stamps[TraceEvent::AdmissionDequeue as usize] = 30;
        assert_eq!(r.segment_ns(Segment::QueueWait), Some(20));
        assert_eq!(r.segment_ns(Segment::Compute), None);
        assert_eq!(r.end_to_end_ns(), None);
        assert_eq!(r.last_event(), TraceEvent::AdmissionDequeue);
        assert!(!r.is_complete());
    }

    #[test]
    fn json_line_carries_stamps_and_segments() {
        let mut r = complete_record();
        r.stage_ns = Some(Arc::new(vec![("conv0".into(), 40), ("fc".into(), 60)]));
        let v: serde::Value = serde_json::from_str(&r.to_json_line()).unwrap();
        assert_eq!(v["id"].as_u64(), Some(3));
        assert_eq!(v["outcome"].as_str(), Some("ok"));
        assert_eq!(v["stamps_ns"]["deliver"].as_u64(), Some(700));
        assert_eq!(v["segments_ns"]["queue_wait"].as_u64(), Some(100));
        assert_eq!(v["compute_stages_ns"]["conv0"].as_u64(), Some(40));
    }

    #[test]
    fn segment_bounds_are_consecutive() {
        let mut prev_to = TraceEvent::Enqueue;
        for (i, s) in SEGMENTS.iter().enumerate() {
            let (from, to) = s.bounds();
            if i > 0 {
                assert_eq!(from as usize, prev_to as usize, "segments must chain");
            }
            assert!((from as usize) < (to as usize));
            prev_to = to;
        }
        assert_eq!(prev_to as usize, TraceEvent::Deliver as usize);
    }
}
