//! Overhead-attribution: decompose request latency into the five
//! hand-off segments and price the engine against raw inference.
//!
//! This is the software analogue of FINN's per-stage cycle attribution
//! (and of the paper's per-layer latency table): instead of guessing
//! "the engine costs ~30%", the report states *which* hand-off the time
//! goes to — queue-wait, batch-wait, dispatch, compute or delivery — at
//! the mean and at the tail, and names the single largest non-compute
//! segment as the tuning target.

use crate::collect::TraceSet;
use crate::record::{Segment, SEGMENTS};
use std::fmt::Write as _;

/// Distribution summary of one latency segment across completed requests
/// (exact percentiles over the sampled population, not bucketed).
#[derive(Clone, Copy, Debug)]
pub struct SegmentStats {
    /// Which segment.
    pub segment: Segment,
    /// Mean nanoseconds.
    pub mean_ns: u64,
    /// Median nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile nanoseconds.
    pub p99_ns: u64,
    /// Share of mean end-to-end latency, percent.
    pub share_pct: f64,
}

/// The attribution report over one [`TraceSet`].
#[derive(Clone, Debug)]
pub struct AttributionReport {
    /// Completed requests the report is computed over.
    pub requests: usize,
    /// Records dropped on full rings (the report is blind to these).
    pub dropped: u64,
    /// Per-segment stats, in lifecycle order.
    pub segments: Vec<SegmentStats>,
    /// Mean end-to-end latency (enqueue → deliver), ns.
    pub mean_e2e_ns: u64,
    /// p99 end-to-end latency, ns.
    pub p99_e2e_ns: u64,
    /// Raw single-caller inference cost per frame, when the caller
    /// measured one (`bcp profile` times `classify_batch` directly).
    pub raw_compute_ns: Option<u64>,
}

impl AttributionReport {
    /// Compute the report. `raw_compute_ns` is an externally measured
    /// per-frame cost of calling the model directly (no engine), used to
    /// price the engine's overhead.
    pub fn from_traces(set: &TraceSet, raw_compute_ns: Option<u64>) -> AttributionReport {
        let mut e2e: Vec<u64> = Vec::new();
        let mut per_seg: Vec<Vec<u64>> = vec![Vec::new(); SEGMENTS.len()];
        for r in set.completed() {
            let Some(total) = r.end_to_end_ns() else {
                continue;
            };
            e2e.push(total);
            for (i, seg) in SEGMENTS.iter().enumerate() {
                per_seg[i].push(r.segment_ns(*seg).unwrap_or(0));
            }
        }
        e2e.sort_unstable();
        let mean_e2e_ns = mean(&e2e);
        let segments = SEGMENTS
            .iter()
            .zip(per_seg.iter_mut())
            .map(|(&segment, samples)| {
                samples.sort_unstable();
                let mean_ns = mean(samples);
                SegmentStats {
                    segment,
                    mean_ns,
                    p50_ns: percentile(samples, 0.50),
                    p99_ns: percentile(samples, 0.99),
                    share_pct: if mean_e2e_ns == 0 {
                        0.0
                    } else {
                        100.0 * mean_ns as f64 / mean_e2e_ns as f64
                    },
                }
            })
            .collect();
        AttributionReport {
            requests: e2e.len(),
            dropped: set.dropped,
            segments,
            mean_e2e_ns,
            p99_e2e_ns: percentile(&e2e, 0.99),
            raw_compute_ns,
        }
    }

    /// Stats for one segment.
    pub fn segment(&self, seg: Segment) -> &SegmentStats {
        &self.segments[seg as usize]
    }

    /// The mean-latency sum of the five segments. Equals
    /// [`mean_e2e_ns`](AttributionReport::mean_e2e_ns) up to integer
    /// rounding of the per-segment means (at most one nanosecond each).
    pub fn segment_sum_ns(&self) -> u64 {
        self.segments
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.mean_ns))
    }

    /// The single largest non-compute segment at the mean — the tuning
    /// target the ROADMAP asks for.
    pub fn largest_non_compute(&self) -> &SegmentStats {
        self.segments
            .iter()
            .filter(|s| s.segment != Segment::Compute)
            .max_by_key(|s| s.mean_ns)
            .expect("segments are never empty")
    }

    /// Engine overhead over the in-engine compute segment, percent of
    /// compute: `(e2e − compute) / compute`.
    pub fn overhead_over_compute_pct(&self) -> f64 {
        let compute = self.segment(Segment::Compute).mean_ns;
        if compute == 0 {
            return 0.0;
        }
        100.0 * self.mean_e2e_ns.saturating_sub(compute) as f64 / compute as f64
    }

    /// Engine overhead over *raw* single-caller inference, percent —
    /// "the exact percentage the engine adds over raw `classify_batch`".
    /// `None` when no raw measurement was supplied.
    pub fn overhead_over_raw_pct(&self) -> Option<f64> {
        let raw = self.raw_compute_ns?;
        if raw == 0 {
            return None;
        }
        Some(100.0 * self.mean_e2e_ns.saturating_sub(raw) as f64 / raw as f64)
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "latency attribution over {} completed traced requests{}",
            self.requests,
            if self.dropped > 0 {
                format!(" ({} records dropped on full rings)", self.dropped)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "  segment       mean          p50          p99      share"
        );
        for s in &self.segments {
            let _ = writeln!(
                out,
                "  {:<11} {:>9.3} ms {:>9.3} ms {:>9.3} ms   {:>5.1}%",
                s.segment.name(),
                s.mean_ns as f64 / 1e6,
                s.p50_ns as f64 / 1e6,
                s.p99_ns as f64 / 1e6,
                s.share_pct,
            );
        }
        let _ = writeln!(
            out,
            "  end-to-end  {:>9.3} ms (p99 {:>9.3} ms); segment sum {:>9.3} ms",
            self.mean_e2e_ns as f64 / 1e6,
            self.p99_e2e_ns as f64 / 1e6,
            self.segment_sum_ns() as f64 / 1e6,
        );
        let biggest = self.largest_non_compute();
        let _ = writeln!(
            out,
            "  largest non-compute segment: {} ({:.1}% of end-to-end latency)",
            biggest.segment.name(),
            biggest.share_pct,
        );
        let _ = writeln!(
            out,
            "  engine overhead over in-engine compute: {:+.1}%",
            self.overhead_over_compute_pct()
        );
        if let Some(pct) = self.overhead_over_raw_pct() {
            let raw = self.raw_compute_ns.unwrap_or(0);
            let _ = writeln!(
                out,
                "  engine overhead over raw classify_batch ({:.3} ms/frame): {:+.1}%",
                raw as f64 / 1e6,
                pct
            );
        }
        out
    }
}

fn mean(sorted: &[u64]) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
    u64::try_from(sum.checked_div(sorted.len() as u128).unwrap_or(0)).unwrap_or(u64::MAX)
}

/// Exact percentile over a sorted slice (nearest-rank), 0 when empty.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank.saturating_sub(1)]
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::record::{TraceEvent, TraceOutcome, TraceRecord};

    /// Record with the given per-segment durations (ns), in order.
    fn record_with_segments(id: u64, segs: [u64; 5]) -> TraceRecord {
        let mut r = TraceRecord::new(id);
        let mut t = 1_000;
        r.stamps[TraceEvent::Enqueue as usize] = t;
        for (seg, d) in SEGMENTS.iter().zip(segs.iter()) {
            let (_, to) = seg.bounds();
            t += d;
            r.stamps[to as usize] = t;
        }
        // The Dispatch segment spans BatchSeal→ComputeStart; WorkerDispatch
        // sits inside it — stamp it at the segment boundary.
        r.stamps[TraceEvent::WorkerDispatch as usize] = r.stamps[TraceEvent::BatchSeal as usize];
        r.outcome = TraceOutcome::Ok;
        r.worker = 0;
        r.batch_size = 1;
        r
    }

    fn set(records: Vec<TraceRecord>) -> TraceSet {
        TraceSet::new(records, 0)
    }

    #[test]
    fn segment_means_sum_to_end_to_end() {
        let s = set(vec![
            record_with_segments(0, [100, 200, 50, 1000, 25]),
            record_with_segments(1, [300, 100, 50, 2000, 25]),
        ]);
        let rep = AttributionReport::from_traces(&s, None);
        assert_eq!(rep.requests, 2);
        assert_eq!(rep.mean_e2e_ns, (1375 + 2475) / 2);
        assert_eq!(rep.segment_sum_ns(), rep.mean_e2e_ns);
        assert_eq!(rep.segment(Segment::Compute).mean_ns, 1500);
    }

    #[test]
    fn largest_non_compute_is_named() {
        let s = set(vec![record_with_segments(0, [10, 400, 20, 5000, 30])]);
        let rep = AttributionReport::from_traces(&s, None);
        assert_eq!(rep.largest_non_compute().segment, Segment::BatchWait);
        assert!(rep.render_text().contains("batch_wait"));
    }

    #[test]
    fn overhead_percentages() {
        let s = set(vec![record_with_segments(0, [100, 100, 100, 600, 100])]);
        let rep = AttributionReport::from_traces(&s, Some(500));
        // e2e = 1000, compute = 600 → 66.7% over compute.
        assert!((rep.overhead_over_compute_pct() - 400.0 / 6.0).abs() < 0.1);
        // vs raw 500 → 100%.
        assert!((rep.overhead_over_raw_pct().unwrap() - 100.0).abs() < 1e-9);
        assert!(rep.render_text().contains("classify_batch"));
    }

    #[test]
    fn empty_set_reports_zeroes() {
        let rep = AttributionReport::from_traces(&set(Vec::new()), None);
        assert_eq!(rep.requests, 0);
        assert_eq!(rep.mean_e2e_ns, 0);
        assert_eq!(rep.overhead_over_compute_pct(), 0.0);
        assert!(rep.overhead_over_raw_pct().is_none());
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        v.sort_unstable();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }
}
