//! Lock-free bounded ring buffer for finished trace records.
//!
//! One ring per engine thread (workers, batcher, client-side submitters
//! share one more), so producers almost never contend; the implementation
//! is nevertheless a full Vyukov-style bounded MPMC queue, safe for any
//! number of producers against the single draining collector. Pushes
//! never block and never allocate: when the ring is full the record is
//! dropped and **counted** — saturation loses data loudly, never
//! silently.
//!
//! All primitives come from [`bcp_sync`], so the *same* source is
//! exhaustively model-checked under `--cfg bcp_model` (see
//! `tests/model.rs` and DESIGN.md §"Concurrency invariants").

use bcp_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use bcp_sync::cell::UnsafeCell;
use std::mem::MaybeUninit;

struct Cell<T> {
    /// Vyukov sequence number: `seq == pos` means the cell is free for the
    /// producer claiming `pos`; `seq == pos + 1` means it holds that
    /// producer's value and is ready for the consumer.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC ring. Capacity is rounded up to a power of two.
pub struct Ring<T> {
    cells: Box<[Cell<T>]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: values move through the ring under the seq protocol below; a
// cell is only read/written by the thread that won its sequence number.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// Ring with at least `capacity` slots (rounded up to a power of two,
    /// minimum 2).
    pub fn with_capacity(capacity: usize) -> Ring<T> {
        let cap = capacity.max(2).next_power_of_two();
        let cells: Box<[Cell<T>]> = (0..cap)
            .map(|i| Cell {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            cells,
            mask: cap.wrapping_sub(1),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Records dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, no data is published
        // through this counter.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Push without blocking. On a full ring the value is dropped and the
    /// drop counter incremented; returns whether the value was stored.
    // bcp:hot-path — lock-free trace-record store, once per finished trace
    pub fn push(&self, value: T) -> bool {
        // ordering: Relaxed — position hint only; staleness is repaired by
        // the seq Acquire check and the CAS below.
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            // audit: allow(index): pos & mask is always < cells.len() (power-of-two capacity)
            let cell = &self.cells[pos & self.mask];
            // ordering: Acquire — pairs with the consumer's Release store
            // of seq; seeing `seq == pos` proves the previous lap's value
            // was fully read out before we overwrite the cell.
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos {
                // Cell free at our position: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    // ordering: Relaxed/Relaxed — the CAS only arbitrates
                    // slot ownership between producers; the value itself is
                    // published by the seq Release store, not by `tail`.
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives us exclusive write
                        // access to this cell until we publish via seq.
                        cell.value.with_mut(|p| unsafe { (*p).write(value) });
                        // ordering: Release — publishes the cell write
                        // above to the consumer's Acquire load of seq.
                        cell.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq.wrapping_sub(pos) as isize > 0 {
                // Another producer already advanced past us; retry there.
                // ordering: Relaxed — fresh position hint, same as above.
                pos = self.tail.load(Ordering::Relaxed);
            } else {
                // seq < pos: the cell still holds an unconsumed value from
                // one lap ago — the ring is full.
                // ordering: Relaxed — statistic counter, never a publish.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
    }

    /// Pop the oldest record, if any.
    pub fn pop(&self) -> Option<T> {
        // ordering: Relaxed — position hint only, repaired by the seq
        // Acquire check and the CAS below.
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            // ordering: Acquire — pairs with the producer's Release store
            // of seq; seeing `seq == pos + 1` makes the producer's cell
            // write visible before we read it out.
            let seq = cell.seq.load(Ordering::Acquire);
            let expected = pos.wrapping_add(1);
            if seq == expected {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    // ordering: Relaxed/Relaxed — the CAS only arbitrates
                    // slot ownership between consumers; visibility of the
                    // value came from the seq Acquire load above.
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives us exclusive read
                        // access; the producer published via seq.
                        let value = cell.value.with_mut(|p| unsafe { (*p).assume_init_read() });
                        // ordering: Release — publishes the consumption to
                        // the next-lap producer's Acquire load of seq, so
                        // it cannot overwrite a cell still being read.
                        cell.seq
                            .store(pos.wrapping_add(self.cells.len()), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq.wrapping_sub(expected) as isize > 0 {
                // ordering: Relaxed — fresh position hint, same as above.
                pos = self.head.load(Ordering::Relaxed);
            } else {
                // seq < pos + 1: the cell is still empty — nothing queued.
                return None;
            }
        }
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Release any values still queued.
        while self.pop().is_some() {}
    }
}

#[cfg(all(test, not(bcp_model)))]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let r: Ring<u64> = Ring::with_capacity(8);
        for i in 0..8 {
            assert!(r.push(i));
        }
        assert_eq!(r.drain(), (0..8).collect::<Vec<_>>());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_are_counted() {
        let r: Ring<u64> = Ring::with_capacity(4);
        let mut stored = 0u64;
        for i in 0..10 {
            if r.push(i) {
                stored += 1;
            }
        }
        assert_eq!(stored, 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.drain().len(), 4);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(Ring::<u8>::with_capacity(5).capacity(), 8);
        assert_eq!(Ring::<u8>::with_capacity(0).capacity(), 2);
    }

    #[test]
    fn wraps_across_many_laps() {
        let r: Ring<usize> = Ring::with_capacity(4);
        for lap in 0..100 {
            for i in 0..3 {
                assert!(r.push(lap * 3 + i));
            }
            for i in 0..3 {
                assert_eq!(r.pop(), Some(lap * 3 + i));
            }
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn concurrent_producers_never_lose_uncounted_records() {
        let r: Arc<Ring<u64>> = Arc::new(Ring::with_capacity(64));
        const PRODUCERS: usize = 4;
        const PER: usize = 5_000;
        let mut drained = 0u64;
        let stored: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let r = r.clone();
                    s.spawn(move || {
                        let mut ok = 0u64;
                        for i in 0..PER {
                            if r.push((p * PER + i) as u64) {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            // Consumer racing the producers.
            let consumer = {
                let r = r.clone();
                s.spawn(move || {
                    let mut n = 0u64;
                    for _ in 0..200_000 {
                        if r.pop().is_some() {
                            n += 1;
                        }
                    }
                    n
                })
            };
            let stored = handles.into_iter().map(|h| h.join().unwrap()).sum();
            drained = consumer.join().unwrap();
            stored
        });
        drained += r.drain().len() as u64;
        assert_eq!(stored, drained, "every accepted record must be drainable");
        assert_eq!(
            stored + r.dropped(),
            (PRODUCERS * PER) as u64,
            "accepted + dropped must account for every push"
        );
    }
}
