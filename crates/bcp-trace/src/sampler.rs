//! Periodic time-series sampler for queue depth and worker occupancy.
//!
//! A background thread calls a user-supplied probe closure at a fixed
//! interval and accumulates `(t_ns, values)` rows. Unlike the trace rings
//! this path is cold (default 10 ms cadence), so a plain `Mutex` around
//! the row vector is fine — the probe itself must stay cheap because it
//! runs on the sampler thread, not the engine's.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One sampled row: nanoseconds since sampler start plus one value per
/// configured series, in the order the series names were given.
#[derive(Clone, Debug)]
pub struct SampleRow {
    /// Nanoseconds since the sampler started.
    pub t_ns: u64,
    /// One value per series.
    pub values: Vec<u64>,
}

/// The collected time series.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    /// Series names, e.g. `["queue_depth", "workers_busy"]`.
    pub series: Vec<String>,
    /// Rows in sample order.
    pub rows: Vec<SampleRow>,
}

impl TimeSeries {
    /// JSONL export: one object per row,
    /// `{"t_ns": ..., "queue_depth": ..., ...}`.
    pub fn to_jsonl(&self) -> String {
        use serde::{Map, Value};
        let mut out = String::new();
        for row in &self.rows {
            let mut m = Map::new();
            m.insert("t_ns".into(), Value::UInt(row.t_ns));
            for (name, v) in self.series.iter().zip(row.values.iter()) {
                m.insert(name.clone(), Value::UInt(*v));
            }
            out.push_str(&serde_json::to_string(&Value::Object(m)).expect("sample row json"));
            out.push('\n');
        }
        out
    }

    /// Peak value of series `name`, 0 when absent or empty.
    pub fn peak(&self, name: &str) -> u64 {
        let Some(idx) = self.series.iter().position(|s| s == name) else {
            return 0;
        };
        self.rows
            .iter()
            .filter_map(|r| r.values.get(idx).copied())
            .max()
            .unwrap_or(0)
    }
}

/// Handle to a running sampler thread. Call
/// [`stop`](TimeSeriesSampler::stop) to join it and take the series.
pub struct TimeSeriesSampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    shared: Arc<SamplerShared>,
}

struct SamplerShared {
    series: Vec<String>,
    rows: Mutex<Vec<SampleRow>>,
}

impl TimeSeriesSampler {
    /// Start sampling. `probe` is called once per `interval` and must
    /// return one value per entry of `series` (short returns are padded
    /// with 0). The first sample is taken immediately.
    pub fn start<F>(series: Vec<String>, interval: Duration, probe: F) -> TimeSeriesSampler
    where
        F: FnMut() -> Vec<u64> + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(SamplerShared {
            series,
            rows: Mutex::new(Vec::new()),
        });
        let handle = {
            let stop = stop.clone();
            let shared = shared.clone();
            let mut probe = probe;
            std::thread::spawn(move || {
                let epoch = Instant::now();
                loop {
                    let mut values = probe();
                    values.resize(shared.series.len(), 0);
                    let t_ns = u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    shared
                        .rows
                        .lock()
                        .expect("sampler rows lock")
                        .push(SampleRow { t_ns, values });
                    // ordering: Relaxed — a plain shutdown flag; the
                    // join in `stop`/`drop` is the synchronization edge.
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(interval);
                }
            })
        };
        TimeSeriesSampler {
            stop,
            handle: Some(handle),
            shared,
        }
    }

    /// Stop the sampler, join its thread, and return everything sampled.
    pub fn stop(mut self) -> TimeSeries {
        // ordering: Relaxed — flag only; the join below orders
        // everything the sampler thread wrote before we read the rows.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        TimeSeries {
            series: self.shared.series.clone(),
            rows: self.shared.rows.lock().expect("sampler rows lock").clone(),
        }
    }
}

impl Drop for TimeSeriesSampler {
    fn drop(&mut self) {
        // ordering: Relaxed — as in `stop`: the join is the edge.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn samples_periodically_and_stops() {
        let n = Arc::new(AtomicU64::new(0));
        let probe_n = n.clone();
        let sampler = TimeSeriesSampler::start(
            vec!["depth".into(), "busy".into()],
            Duration::from_millis(1),
            move || {
                let v = probe_n.fetch_add(1, Ordering::Relaxed);
                vec![v, v * 2]
            },
        );
        std::thread::sleep(Duration::from_millis(20));
        let series = sampler.stop();
        assert!(series.rows.len() >= 2, "expected several samples");
        assert_eq!(series.series, vec!["depth", "busy"]);
        for row in &series.rows {
            assert_eq!(row.values.len(), 2);
            assert_eq!(row.values[1], row.values[0] * 2);
        }
        // Monotone time.
        for w in series.rows.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
    }

    #[test]
    fn jsonl_and_peak() {
        let ts = TimeSeries {
            series: vec!["queue_depth".into()],
            rows: vec![
                SampleRow {
                    t_ns: 5,
                    values: vec![3],
                },
                SampleRow {
                    t_ns: 10,
                    values: vec![7],
                },
            ],
        };
        let jsonl = ts.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        let v: serde::Value = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(v["t_ns"].as_u64(), Some(5));
        assert_eq!(v["queue_depth"].as_u64(), Some(3));
        assert_eq!(ts.peak("queue_depth"), 7);
        assert_eq!(ts.peak("missing"), 0);
    }

    #[test]
    fn short_probe_returns_are_padded() {
        let sampler = TimeSeriesSampler::start(
            vec!["a".into(), "b".into()],
            Duration::from_millis(1),
            Vec::new,
        );
        std::thread::sleep(Duration::from_millis(5));
        let series = sampler.stop();
        assert!(series.rows.iter().all(|r| r.values == vec![0, 0]));
    }
}
