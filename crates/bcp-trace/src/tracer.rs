//! The tracer: head sampling, the nanosecond epoch clock, and the shard
//! of rings that finished records land in.

use crate::record::{TraceEvent, TraceOutcome, TraceRecord};
use crate::ring::Ring;
use bcp_telemetry::{Counter, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tracing knobs, carried inside the engine's config.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Head sampling: trace one request in `sample_rate` (1 = every
    /// request, the right setting for tests and dedicated profiling runs;
    /// the production default of 64 keeps the overhead within the bench
    /// gate's 3%).
    pub sample_rate: u64,
    /// Capacity of each per-thread ring. Overflow drops records and
    /// counts them (`trace.dropped`), it never blocks the hot path.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_rate: 64,
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// Config that samples every request — what tests and `bcp profile`
    /// use.
    pub fn sample_all() -> TraceConfig {
        TraceConfig {
            sample_rate: 1,
            ..TraceConfig::default()
        }
    }
}

/// Pre-resolved `trace.*` telemetry handles.
struct TraceMetrics {
    sampled: Counter,
    completed: Counter,
    dropped: Counter,
}

/// Shared tracing state for one engine: the epoch clock, the sampling
/// counter, and one finished-record ring per engine thread.
pub struct Tracer {
    epoch: Instant,
    cfg: TraceConfig,
    /// Admission counter driving head sampling (`n % sample_rate == 0`).
    admissions: AtomicU64,
    /// Next [`TraceId`](crate::TraceId).
    next_id: AtomicU64,
    /// Rings `0..workers` belong to the worker threads; ring `workers` to
    /// the batcher; the last ring to client/submitter threads.
    rings: Vec<Ring<TraceRecord>>,
    metrics: Option<TraceMetrics>,
}

impl Tracer {
    /// Tracer for an engine with `workers` worker threads. When a registry
    /// is given, `trace.sampled` / `trace.completed` / `trace.dropped`
    /// counters are exported.
    pub fn new(cfg: TraceConfig, workers: usize, registry: Option<&Registry>) -> Arc<Tracer> {
        let cap = cfg.ring_capacity;
        let rings = (0..workers.saturating_add(2))
            .map(|_| Ring::with_capacity(cap))
            .collect();
        Arc::new(Tracer {
            epoch: Instant::now(),
            cfg,
            admissions: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            rings,
            metrics: registry.map(|r| TraceMetrics {
                sampled: r.counter("trace.sampled"),
                completed: r.counter("trace.completed"),
                dropped: r.counter("trace.dropped"),
            }),
        })
    }

    /// The configuration the tracer was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Nanoseconds since the tracer's epoch, floored at 1 so a genuine
    /// stamp is never confused with the "not reached" sentinel 0.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos())
            .unwrap_or(u64::MAX)
            .max(1)
    }

    /// Head-sampling decision for one admitted request: every
    /// `sample_rate`-th admission gets a live trace, already stamped with
    /// [`TraceEvent::Enqueue`].
    // bcp:hot-path — sampling decision runs once per admitted request
    pub fn sample(&self) -> Option<Box<ActiveTrace>> {
        // ordering: Relaxed — admission counter used only for the 1-in-N
        // sampling decision; no data is published through it.
        let n = self.admissions.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.cfg.sample_rate.max(1)) {
            return None;
        }
        if let Some(m) = &self.metrics {
            m.sampled.inc();
        }
        // ordering: Relaxed — id allocation needs uniqueness (RMW
        // atomicity), not ordering.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut record = TraceRecord::new(id);
        // audit: allow(index): stamps is an EVENTS-sized array indexed by enum discriminant — in bounds by construction
        record.stamps[TraceEvent::Enqueue as usize] = self.now_ns();
        // audit: allow(alloc): one boxed live trace per *sampled* request — the 1-in-N slow lane, already past the early return
        Some(Box::new(ActiveTrace { record }))
    }

    /// Ring index for worker thread `w`.
    pub fn worker_ring(&self, w: usize) -> usize {
        w.min(self.rings.len().saturating_sub(3))
    }

    /// Ring index for the batcher thread.
    pub fn batcher_ring(&self) -> usize {
        self.rings.len().saturating_sub(2)
    }

    /// Ring index for client/submitter threads.
    pub fn client_ring(&self) -> usize {
        self.rings.len().saturating_sub(1)
    }

    /// Finish a live trace: stamp [`TraceEvent::Deliver`] if the caller
    /// has not, set the outcome, and push the record onto `ring`
    /// (an index from [`worker_ring`](Tracer::worker_ring) /
    /// [`batcher_ring`](Tracer::batcher_ring) /
    /// [`client_ring`](Tracer::client_ring)).
    // Takes the Box callers already hold (`Option<Box<ActiveTrace>>` in
    // each Request) so finishing moves a pointer, not the record.
    #[allow(clippy::boxed_local)]
    // bcp:hot-path — trace completion runs once per sampled request
    pub fn finish(&self, mut trace: Box<ActiveTrace>, outcome: TraceOutcome, ring: usize) {
        trace.record.outcome = outcome;
        // audit: allow(index): stamps is an EVENTS-sized array indexed by enum discriminant — in bounds by construction
        if trace.record.stamps[TraceEvent::Deliver as usize] == 0 {
            // audit: allow(index): same EVENTS-sized array, same in-bounds discriminant
            trace.record.stamps[TraceEvent::Deliver as usize] = self.now_ns();
        }
        let idx = ring.min(self.rings.len().saturating_sub(1));
        // audit: allow(index): idx is clamped to rings.len()-1 on the previous line
        // audit: allow(alloc): Ring::push stores into preallocated cells — no heap traffic
        let stored = self.rings[idx].push(trace.record);
        if let Some(m) = &self.metrics {
            if stored {
                m.completed.inc();
            } else {
                m.dropped.inc();
            }
        }
    }

    /// Drain every ring into one batch of finished records.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for ring in &self.rings {
            out.extend(ring.drain());
        }
        out
    }

    /// Total records dropped on full rings so far.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(Ring::dropped).sum()
    }

    /// Requests sampled so far.
    pub fn sampled(&self) -> u64 {
        // ordering: Relaxed — statistic read; bounded staleness is fine.
        let n = self.admissions.load(Ordering::Relaxed);
        let rate = self.cfg.sample_rate.max(1);
        n.div_ceil(rate)
    }
}

/// A live, travelling trace: owned by whichever thread currently owns the
/// request, stamped lock-free as it moves through the engine.
pub struct ActiveTrace {
    record: TraceRecord,
}

impl ActiveTrace {
    /// Stamp `event` with the tracer's current clock. Idempotent per
    /// event: the first stamp wins (re-stamps would break monotonicity
    /// audits).
    #[inline]
    // bcp:hot-path — event stamping runs at every pipeline hand-off of a sampled request
    pub fn stamp(&mut self, tracer: &Tracer, event: TraceEvent) {
        // audit: allow(index): stamps is an EVENTS-sized array indexed by enum discriminant — in bounds by construction
        let slot = &mut self.record.stamps[event as usize];
        if *slot == 0 {
            *slot = tracer.now_ns();
        }
    }

    /// Record the worker index that served this request.
    #[inline]
    pub fn set_worker(&mut self, worker: usize) {
        self.record.worker = worker;
    }

    /// Record the micro-batch size this request rode in.
    #[inline]
    pub fn set_batch_size(&mut self, size: usize) {
        self.record.batch_size = u32::try_from(size).unwrap_or(u32::MAX);
    }

    /// Attach per-pipeline-stage compute sub-spans (shared per batch).
    #[inline]
    pub fn set_stage_ns(&mut self, stages: std::sync::Arc<Vec<(String, u64)>>) {
        self.record.stage_ns = Some(stages);
    }

    /// Read-only view of the record being built (tests).
    pub fn record(&self) -> &TraceRecord {
        &self.record
    }
}

/// Stamp an optional live trace — the no-op form the engine hot path
/// uses. When tracing is off (or this request was not sampled) this is a
/// single branch on `None`.
#[inline]
pub fn stamp(
    trace: &mut Option<Box<ActiveTrace>>,
    tracer: &Option<Arc<Tracer>>,
    event: TraceEvent,
) {
    if let (Some(t), Some(tr)) = (trace.as_mut(), tracer.as_ref()) {
        t.stamp(tr, event);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::record::EVENTS;

    #[test]
    fn sampling_one_in_n_is_exact() {
        let t = Tracer::new(
            TraceConfig {
                sample_rate: 4,
                ring_capacity: 64,
            },
            1,
            None,
        );
        let sampled = (0..16).filter_map(|_| t.sample()).count();
        assert_eq!(sampled, 4, "exactly every 4th admission is sampled");
        assert_eq!(t.sampled(), 4);
    }

    #[test]
    fn sample_all_traces_everything() {
        let t = Tracer::new(TraceConfig::sample_all(), 1, None);
        assert_eq!((0..10).filter_map(|_| t.sample()).count(), 10);
    }

    #[test]
    fn stamps_are_monotone_and_first_stamp_wins() {
        let t = Tracer::new(TraceConfig::sample_all(), 1, None);
        let mut tr = t.sample().unwrap();
        for e in EVENTS {
            tr.stamp(&t, e);
        }
        let first_compute = tr.record().stamps[TraceEvent::ComputeStart as usize];
        tr.stamp(&t, TraceEvent::ComputeStart);
        assert_eq!(
            tr.record().stamps[TraceEvent::ComputeStart as usize],
            first_compute
        );
        let stamps = tr.record().stamps;
        for w in stamps.windows(2) {
            assert!(w[0] <= w[1], "stamps must be non-decreasing: {stamps:?}");
        }
        assert!(stamps[0] >= 1, "stamp 0 is reserved for 'not reached'");
    }

    #[test]
    fn finish_routes_to_rings_and_counts() {
        let r = Registry::new();
        let t = Tracer::new(TraceConfig::sample_all(), 2, Some(&r));
        let a = t.sample().unwrap();
        let b = t.sample().unwrap();
        t.finish(a, TraceOutcome::Ok, t.worker_ring(0));
        t.finish(b, TraceOutcome::Failed, t.batcher_ring());
        let records = t.drain();
        assert_eq!(records.len(), 2);
        assert!(records
            .iter()
            .all(|r| r.stamp(TraceEvent::Deliver).is_some()));
        let snap = r.snapshot();
        assert_eq!(snap.counters["trace.sampled"], 2);
        assert_eq!(snap.counters["trace.completed"], 2);
        assert_eq!(snap.counters.get("trace.dropped").copied().unwrap_or(0), 0);
    }

    #[test]
    fn ring_overflow_counts_into_dropped() {
        let r = Registry::new();
        let t = Tracer::new(
            TraceConfig {
                sample_rate: 1,
                ring_capacity: 2,
            },
            1,
            Some(&r),
        );
        for _ in 0..8 {
            let tr = t.sample().unwrap();
            t.finish(tr, TraceOutcome::Ok, t.client_ring());
        }
        assert_eq!(t.dropped(), 6);
        assert_eq!(r.snapshot().counters["trace.dropped"], 6);
        assert_eq!(t.drain().len(), 2);
    }
}
