//! Model-checked interleaving suites for the lock-free trace ring.
//!
//! Compiled only under `RUSTFLAGS="--cfg bcp_model"`; under a normal
//! `cargo test` this file is empty. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg bcp_model" cargo test -p bcp-trace --test model
//! ```
//!
//! Every body below runs once per explored thread schedule; the asserts
//! inside therefore hold under *all* interleavings the checker reaches,
//! and a violation aborts with a replayable failing schedule.
#![cfg(bcp_model)]

use bcp_sync::model::Builder;
use bcp_sync::{thread, Arc};
use bcp_trace::Ring;
use std::collections::HashSet;
use std::time::Duration;

fn builder(name: &str) -> Builder {
    Builder {
        name: name.to_string(),
        ..Builder::default()
    }
}

/// Invariant: `accepted + dropped == attempted` under every schedule —
/// the ring never loses a record without incrementing `dropped`, even
/// while producers race each other for the same cells of a full ring.
#[test]
fn ring_accounting_holds_under_all_interleavings() {
    let mut b = builder("ring-accounting");
    // Two producers × two pushes into a capacity-2 ring with no
    // consumer: overflow is guaranteed on some schedules and absent on
    // others, so both the accept and the drop-and-count paths are
    // exercised.
    b.preemption_bound = Some(2);
    let stats = b.check(|| {
        let r: Arc<Ring<u64>> = Arc::new(Ring::with_capacity(2));
        let handles: Vec<_> = (1u64..=2)
            .map(|p| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    let mut accepted = 0u64;
                    for i in 0..2u64 {
                        if r.push(p * 10 + i) {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let drained = r.drain();
        assert_eq!(
            drained.len() as u64,
            accepted,
            "every accepted record must be drainable"
        );
        assert_eq!(
            accepted + r.dropped(),
            4,
            "accepted + dropped must account for every push"
        );
        let unique: HashSet<u64> = drained.iter().copied().collect();
        assert_eq!(unique.len(), drained.len(), "no record may appear twice");
    });
    assert!(
        stats.complete || stats.schedules >= 10_000,
        "expected exhaustive or >=10k schedules, got {} (complete: {})",
        stats.schedules,
        stats.complete
    );
}

/// Invariant: a slot is never yielded twice — a consumer racing the
/// producers (and the final drain) sees each accepted value exactly
/// once, never a duplicate and never an uninitialized cell.
#[test]
fn ring_never_yields_same_slot_twice() {
    let mut b = builder("ring-unique-pop");
    // Two preemptions reach every known class of Vyukov-protocol bug
    // (the CHESS observation) while keeping this suite inside the CI
    // wall-clock cap; the 10k-volume gate below runs unbounded.
    b.preemption_bound = Some(2);
    let stats = b.check(|| {
        let r: Arc<Ring<u64>> = Arc::new(Ring::with_capacity(2));
        let producer = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let mut accepted = 0u64;
                for v in [7u64, 8, 9] {
                    if r.push(v) {
                        accepted += 1;
                    }
                }
                accepted
            })
        };
        let consumer = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    if let Some(v) = r.pop() {
                        got.push(v);
                    }
                }
                got
            })
        };
        let accepted = producer.join().unwrap();
        let mut got = consumer.join().unwrap();
        got.extend(r.drain());
        assert_eq!(
            got.len() as u64,
            accepted,
            "popped exactly the accepted set"
        );
        let unique: HashSet<u64> = got.iter().copied().collect();
        assert_eq!(unique.len(), got.len(), "a slot was yielded twice");
        for v in &got {
            assert!([7, 8, 9].contains(v), "popped value {v} was never pushed");
        }
    });
    assert!(
        stats.complete || stats.schedules >= 10_000,
        "expected exhaustive or >=10k schedules, got {} (complete: {})",
        stats.schedules,
        stats.complete
    );
}

/// Exploration-volume gate: with no preemption bound this configuration
/// has far more than 10k interleavings, so the checker must actually
/// reach the 10k floor inside the schedule/time caps (acceptance
/// criterion for the model-check CI job).
#[test]
fn ring_model_explores_at_least_10k_schedules() {
    let mut b = builder("ring-10k");
    b.max_schedules = 12_000;
    b.max_duration = Duration::from_secs(120);
    let stats = b.check(|| {
        let r: Arc<Ring<u64>> = Arc::new(Ring::with_capacity(2));
        let handles: Vec<_> = (1u64..=2)
            .map(|p| {
                let r = Arc::clone(&r);
                thread::spawn(move || (r.push(p), r.push(p + 10)))
            })
            .collect();
        let consumer = {
            let r = Arc::clone(&r);
            thread::spawn(move || (r.pop(), r.pop()))
        };
        for h in handles {
            h.join().unwrap();
        }
        consumer.join().unwrap();
    });
    assert!(
        stats.complete || stats.schedules >= 10_000,
        "explored only {} schedules without completing",
        stats.schedules
    );
}

/// Seeded-bug negative test: the same Vyukov protocol with the
/// producer's `Release` publish downgraded to `Relaxed`. The consumer's
/// `Acquire` load of `seq` then no longer happens-after the cell write,
/// and the checker must flag the unsynchronized cell access as a data
/// race, printing the failing schedule (kept here as proof the detector
/// actually catches the class of bug the real ring's orderings exist to
/// prevent).
#[test]
#[should_panic(expected = "data race")]
fn broken_ring_without_release_publish_is_caught() {
    use bcp_sync::atomic::{AtomicUsize, Ordering};
    use bcp_sync::cell::UnsafeCell;

    struct BrokenSlot {
        seq: AtomicUsize,
        value: UnsafeCell<u64>,
    }

    let mut b = builder("ring-seeded-bug");
    b.max_schedules = 5_000;
    b.check(|| {
        let slot = Arc::new(BrokenSlot {
            seq: AtomicUsize::new(0),
            value: UnsafeCell::new(0),
        });
        let producer = {
            let s = Arc::clone(&slot);
            thread::spawn(move || {
                s.value.with_mut(|p| unsafe { *p = 42 });
                // BUG (deliberate): Relaxed instead of Release — the cell
                // write above is not published to the consumer.
                s.seq.store(1, Ordering::Relaxed);
            })
        };
        let consumer = {
            let s = Arc::clone(&slot);
            thread::spawn(move || {
                if s.seq.load(Ordering::Acquire) == 1 {
                    assert_eq!(s.value.with(|p| unsafe { *p }), 42);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    });
}
