//! The Table I architectures and their hardware dimensioning.

use bcp_check::{ArchSpec, ConvSpec, Diagnostic, FcSpec};
use bcp_finn::dse::LayerDims;
use bcp_finn::Folding;
use serde::{Deserialize, Serialize};

/// One convolutional layer's description.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// 2×2 max-pool follows this layer.
    pub pool_after: bool,
}

/// One fully-connected layer's description.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FcLayer {
    /// Input features.
    pub f_in: usize,
    /// Output features.
    pub f_out: usize,
}

/// Which BinaryCoP prototype (Sec. IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchKind {
    /// The full CNV (VGG/BinaryNet derived).
    Cnv,
    /// Narrow CNV (smaller memory footprint).
    NCnv,
    /// μ-CNV: one conv layer fewer, fits the Z7010 after DSP offload.
    MicroCnv,
}

/// A complete architecture: layer stack + the paper's PE/SIMD vectors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Arch {
    /// Display name.
    pub name: String,
    /// Input image edge (32 for all prototypes).
    pub input_size: usize,
    /// Conv trunk, in order. All kernels are K=3, stride 1, no padding.
    pub convs: Vec<ConvLayer>,
    /// Dense head, in order; the last layer emits the 4 class logits.
    pub fcs: Vec<FcLayer>,
    /// PE count per compute layer (convs then FCs) — Table I.
    pub pe: Vec<usize>,
    /// SIMD lanes per compute layer — Table I.
    pub simd: Vec<usize>,
    /// Whether the deployment offloads XNOR logic to DSP blocks
    /// (μ-CNV on the Z7010, OrthrusPE — paper ref 27).
    pub dsp_offload: bool,
}

/// Kernel size shared by every BinaryCoP convolution.
pub const K: usize = 3;
/// Number of output classes.
pub const CLASSES: usize = 4;

impl ArchKind {
    /// All prototypes in Table I order.
    pub const ALL: [ArchKind; 3] = [ArchKind::Cnv, ArchKind::NCnv, ArchKind::MicroCnv];

    /// The architecture description.
    pub fn arch(self) -> Arch {
        match self {
            ArchKind::Cnv => Arch {
                name: "CNV".into(),
                input_size: 32,
                convs: vec![
                    ConvLayer {
                        c_in: 3,
                        c_out: 64,
                        pool_after: false,
                    },
                    ConvLayer {
                        c_in: 64,
                        c_out: 64,
                        pool_after: true,
                    },
                    ConvLayer {
                        c_in: 64,
                        c_out: 128,
                        pool_after: false,
                    },
                    ConvLayer {
                        c_in: 128,
                        c_out: 128,
                        pool_after: true,
                    },
                    ConvLayer {
                        c_in: 128,
                        c_out: 256,
                        pool_after: false,
                    },
                    ConvLayer {
                        c_in: 256,
                        c_out: 256,
                        pool_after: false,
                    },
                ],
                fcs: vec![
                    FcLayer {
                        f_in: 256,
                        f_out: 512,
                    },
                    FcLayer {
                        f_in: 512,
                        f_out: 512,
                    },
                    FcLayer {
                        f_in: 512,
                        f_out: CLASSES,
                    },
                ],
                pe: vec![16, 32, 16, 16, 4, 1, 1, 1, 4],
                simd: vec![3, 32, 32, 32, 32, 32, 4, 8, 1],
                dsp_offload: false,
            },
            ArchKind::NCnv => Arch {
                name: "n-CNV".into(),
                input_size: 32,
                convs: vec![
                    ConvLayer {
                        c_in: 3,
                        c_out: 16,
                        pool_after: false,
                    },
                    ConvLayer {
                        c_in: 16,
                        c_out: 16,
                        pool_after: true,
                    },
                    ConvLayer {
                        c_in: 16,
                        c_out: 32,
                        pool_after: false,
                    },
                    ConvLayer {
                        c_in: 32,
                        c_out: 32,
                        pool_after: true,
                    },
                    ConvLayer {
                        c_in: 32,
                        c_out: 64,
                        pool_after: false,
                    },
                    ConvLayer {
                        c_in: 64,
                        c_out: 64,
                        pool_after: false,
                    },
                ],
                fcs: vec![
                    FcLayer {
                        f_in: 64,
                        f_out: 128,
                    },
                    FcLayer {
                        f_in: 128,
                        f_out: 128,
                    },
                    FcLayer {
                        f_in: 128,
                        f_out: CLASSES,
                    },
                ],
                pe: vec![16, 16, 16, 16, 4, 1, 1, 1, 1],
                simd: vec![3, 16, 16, 32, 32, 32, 4, 8, 1],
                dsp_offload: false,
            },
            ArchKind::MicroCnv => Arch {
                name: "μ-CNV".into(),
                input_size: 32,
                convs: vec![
                    ConvLayer {
                        c_in: 3,
                        c_out: 16,
                        pool_after: false,
                    },
                    ConvLayer {
                        c_in: 16,
                        c_out: 16,
                        pool_after: true,
                    },
                    ConvLayer {
                        c_in: 16,
                        c_out: 32,
                        pool_after: false,
                    },
                    ConvLayer {
                        c_in: 32,
                        c_out: 32,
                        pool_after: true,
                    },
                    ConvLayer {
                        c_in: 32,
                        c_out: 64,
                        pool_after: false,
                    },
                ],
                fcs: vec![
                    FcLayer {
                        f_in: 576,
                        f_out: 128,
                    },
                    FcLayer {
                        f_in: 128,
                        f_out: CLASSES,
                    },
                ],
                pe: vec![4, 4, 4, 4, 1, 1, 1],
                simd: vec![3, 16, 16, 32, 32, 16, 1],
                dsp_offload: true,
            },
        }
    }
}

impl Arch {
    /// Spatial size after each conv layer (before any pool), plus the final
    /// flattened feature count. Returns `(per_conv_out_hw, flat_features)`.
    pub fn spatial_plan(&self) -> (Vec<usize>, usize) {
        let mut hw = self.input_size;
        let mut outs = Vec::with_capacity(self.convs.len());
        for conv in &self.convs {
            hw -= K - 1; // valid 3×3 convolution
            outs.push(hw);
            if conv.pool_after {
                assert!(
                    hw.is_multiple_of(2),
                    "pool requires an even extent, got {hw}"
                );
                hw /= 2;
            }
        }
        let flat = self.convs.last().map(|c| c.c_out).unwrap_or(3) * hw * hw;
        (outs, flat)
    }

    /// The static checker's plain-data view of this architecture
    /// (`bcp-check` sits below this crate, so it defines its own type).
    pub fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.name.clone(),
            input_size: self.input_size,
            kernel: K,
            classes: CLASSES,
            convs: self
                .convs
                .iter()
                .map(|c| ConvSpec {
                    c_in: c.c_in,
                    c_out: c.c_out,
                    pool_after: c.pool_after,
                })
                .collect(),
            fcs: self
                .fcs
                .iter()
                .map(|f| FcSpec {
                    f_in: f.f_in,
                    f_out: f.f_out,
                })
                .collect(),
            pe: self.pe.clone(),
            simd: self.simd.clone(),
            dsp_offload: self.dsp_offload,
        }
    }

    /// Validate internal consistency: channel chaining, FC fan-in matching
    /// the flattened conv output, PE/SIMD vector lengths, pool parity.
    /// Every inconsistency is reported as a typed, localized `BCP0xx`
    /// diagnostic; `Ok(())` means a pipeline can be laid out.
    ///
    /// This is the shape-inference band only — scheduling and resource
    /// findings (folding divisibility, cycle budgets, device fit) come from
    /// the full [`bcp_check::check_arch`], which `bcp check` runs; foldings
    /// that don't divide their matrices are functionally legal (the fuzz
    /// suite deploys them), just never used by the published designs.
    pub fn try_validate(&self) -> Result<(), Vec<Diagnostic>> {
        let analysis = bcp_check::infer_shapes(&self.spec());
        if analysis.diagnostics.is_empty() {
            Ok(())
        } else {
            Err(analysis.diagnostics)
        }
    }

    /// Panicking wrapper over [`Arch::try_validate`] for call sites where a
    /// broken architecture is a programming error.
    pub fn validate(&self) {
        if let Err(diags) = self.try_validate() {
            let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
            panic!(
                "architecture {} failed validation:\n{}",
                self.name,
                rendered.join("\n")
            );
        }
    }

    /// The folding of compute layer `i` (convs then FCs, Table I order).
    pub fn folding(&self, i: usize) -> Folding {
        Folding::new(self.pe[i], self.simd[i])
    }

    /// Total binary weight bits (the BNN memory footprint the paper's ×32
    /// claim applies to).
    pub fn weight_bits(&self) -> u64 {
        let conv: u64 = self
            .convs
            .iter()
            .map(|c| (c.c_in * c.c_out * K * K) as u64)
            .sum();
        let fc: u64 = self.fcs.iter().map(|f| (f.f_in * f.f_out) as u64).sum();
        conv + fc
    }

    /// Abstract MVTU workloads for the DSE and the timing model: matrix
    /// dims + vectors/frame per compute layer.
    pub fn layer_dims(&self) -> Vec<LayerDims> {
        let mut dims = Vec::with_capacity(self.convs.len() + self.fcs.len());
        let mut hw = self.input_size;
        for (i, conv) in self.convs.iter().enumerate() {
            hw -= K - 1;
            dims.push(LayerDims {
                name: format!("conv{}", i + 1),
                rows: conv.c_out,
                cols: conv.c_in * K * K,
                vectors: hw * hw,
            });
            if conv.pool_after {
                hw /= 2;
            }
        }
        for (i, fc) in self.fcs.iter().enumerate() {
            dims.push(LayerDims {
                name: format!("fc{}", i + 1),
                rows: fc.f_out,
                cols: fc.f_in,
                vectors: 1,
            });
        }
        dims
    }

    /// Render this column of Table I.
    pub fn table1_column(&self) -> String {
        let mut s = format!("{}\n", self.name);
        for (i, c) in self.convs.iter().enumerate() {
            let group = i / 2 + 1;
            let idx = i % 2 + 1;
            s.push_str(&format!("  Conv.{group}.{idx} [{}, {}]\n", c.c_in, c.c_out));
        }
        for (i, f) in self.fcs.iter().enumerate() {
            s.push_str(&format!("  FC.{} [{}]\n", i + 1, f.f_out));
        }
        let pe: Vec<String> = self.pe.iter().map(|p| p.to_string()).collect();
        let simd: Vec<String> = self.simd.iter().map(|p| p.to_string()).collect();
        s.push_str(&format!(
            "  PE:   {}\n  SIMD: {}\n",
            pe.join(", "),
            simd.join(", ")
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_archs_validate() {
        for kind in ArchKind::ALL {
            kind.arch().validate();
            assert!(kind.arch().try_validate().is_ok());
        }
    }

    #[test]
    fn try_validate_reports_typed_diagnostics() {
        let mut a = ArchKind::NCnv.arch();
        a.convs[2].c_in = 99; // break the channel chain
        a.fcs[2].f_out = 7; // and the head width
        let diags = a.try_validate().unwrap_err();
        assert!(diags
            .iter()
            .any(|d| d.code == bcp_check::Code::ConvChainMismatch
                && d.location == "n-CNV.convs[2].c_in"));
        assert!(diags
            .iter()
            .any(|d| d.code == bcp_check::Code::HeadWidthMismatch));
    }

    #[test]
    #[should_panic(expected = "BCP003")]
    fn validate_panics_with_rendered_diagnostics() {
        let mut a = ArchKind::Cnv.arch();
        a.fcs[0].f_in = 300; // flatten mismatch
        a.validate();
    }

    #[test]
    fn spec_mirrors_arch_and_targets_paper_devices() {
        let a = ArchKind::MicroCnv.arch();
        let s = a.spec();
        assert_eq!(s.convs.len(), a.convs.len());
        assert_eq!(s.pe, a.pe);
        assert_eq!(s.kernel, K);
        assert_eq!(s.classes, CLASSES);
        assert_eq!(s.target_device().name, "XC7Z010");
        assert_eq!(ArchKind::Cnv.arch().spec().target_device().name, "XC7Z020");
    }

    #[test]
    fn cnv_matches_table1() {
        let a = ArchKind::Cnv.arch();
        assert_eq!(a.convs.len(), 6);
        assert_eq!(a.fcs.len(), 3);
        assert_eq!(a.convs[0].c_out, 64);
        assert_eq!(a.convs[5].c_out, 256);
        assert_eq!(a.fcs[2].f_out, 4);
        assert_eq!(a.pe, vec![16, 32, 16, 16, 4, 1, 1, 1, 4]);
        assert_eq!(a.simd, vec![3, 32, 32, 32, 32, 32, 4, 8, 1]);
    }

    #[test]
    fn spatial_plan_matches_paper_geometry() {
        // 32 → 30 → 28 →(pool)14 → 12 → 10 →(pool)5 → 3 → 1.
        let a = ArchKind::Cnv.arch();
        let (outs, flat) = a.spatial_plan();
        assert_eq!(outs, vec![30, 28, 12, 10, 3, 1]);
        assert_eq!(flat, 256);
        // μ-CNV stops one conv earlier: 3×3×64 = 576 flat features — the
        // "larger spatial dimension before the fully-connected layers"
        // trade-off Sec. IV-B describes.
        let u = ArchKind::MicroCnv.arch();
        let (outs, flat) = u.spatial_plan();
        assert_eq!(outs, vec![30, 28, 12, 10, 3]);
        assert_eq!(flat, 576);
    }

    #[test]
    fn micro_cnv_has_more_weights_than_ncnv_head() {
        // Sec. IV-B: "the trade-off is a slight increase in the memory
        // footprint of the BNN" for μ-CNV relative to n-CNV.
        let n = ArchKind::NCnv.arch().weight_bits();
        let u = ArchKind::MicroCnv.arch().weight_bits();
        let c = ArchKind::Cnv.arch().weight_bits();
        assert!(u > n, "μ-CNV {u} bits should exceed n-CNV {n} bits");
        assert!(c > 10 * n, "CNV should dwarf both");
    }

    #[test]
    fn weight_bits_known_values() {
        // Hand-computed from Table I.
        assert_eq!(ArchKind::Cnv.arch().weight_bits(), 1_539_776);
        assert_eq!(ArchKind::NCnv.arch().weight_bits(), 96_944);
        assert_eq!(ArchKind::MicroCnv.arch().weight_bits(), 109_232);
    }

    #[test]
    fn layer_dims_cover_all_compute_layers() {
        for kind in ArchKind::ALL {
            let a = kind.arch();
            let dims = a.layer_dims();
            assert_eq!(dims.len(), a.pe.len());
            // Every published folding divides its matrix exactly.
            for (i, d) in dims.iter().enumerate() {
                let f = a.folding(i);
                assert!(
                    f.is_exact(d.rows, d.cols),
                    "{} layer {} ({}×{}) vs PE={} SIMD={}",
                    a.name,
                    d.name,
                    d.rows,
                    d.cols,
                    f.pe,
                    f.simd
                );
            }
        }
    }

    #[test]
    fn table1_column_renders() {
        let s = ArchKind::NCnv.arch().table1_column();
        assert!(s.contains("Conv.1.1 [3, 16]"));
        assert!(s.contains("FC.3 [4]"));
        assert!(s.contains("PE:   16, 16, 16, 16, 4, 1, 1, 1, 1"));
    }
}
