//! `bcp` — the BinaryCoP deployment CLI.
//!
//! ```text
//! bcp check    --arch <cnv|ncnv|ucnv> | --all-arches
//!              [--device z7020|z7010] [--target-fps N] [--fifo-depth N] [--json]
//! bcp train    --arch <cnv|ncnv|ucnv> --out model.json [--per-class N] [--epochs N]
//! bcp deploy   --arch <...> --model model.json --out accel.json
//! bcp classify --arch <...> --accel accel.json IMG.ppm [IMG2.ppm …]
//! bcp info     --arch <...> [--accel accel.json]
//! bcp demo
//! bcp serve-bench [--arch tiny|cnv|ncnv|ucnv] [--workers N] [--clients N] …
//! ```
//!
//! `serve-bench` stands up the `bcp-serve` micro-batching engine over a
//! pool of predictor replicas and drives it with concurrent closed-loop
//! clients, printing throughput/latency percentiles, a sequential
//! baseline, exact response accounting, and (with
//! `--streaming-min-batch`) the cycle-model correlation measured under
//! real concurrent load.
//!
//! `check` runs the `bcp-check` static verifier (shape inference, folding
//! legality, cycle budgets, FIFO/rate balance, device resource fit) and
//! exits non-zero when any architecture carries an error-severity
//! `BCP0xx` diagnostic. `--json` emits the machine-readable report list.
//!
//! Input images are binary PPM (P6); arbitrary sizes are box-resized to
//! the 32×32 accelerator input, mirroring the paper's preprocessing.
//!
//! `train`, `classify` and `demo` additionally accept `--telemetry <dir>`:
//! metrics and JSONL events are collected during the run and written to
//! `<dir>/events.jsonl` + `<dir>/summary.json` (see the bcp-telemetry
//! crate for the schema), with a human summary printed to stderr.

#![forbid(unsafe_code)]

use bcp_dataset::ppm::{decode_ppm, resize_to};
use binarycop::arch::{Arch, ArchKind};
use binarycop::model::build_bnn;
use binarycop::predictor::{BinaryCoP, OperatingMode};
use binarycop::recipe::{run_instrumented, Recipe};
use std::collections::HashMap;
use std::process::exit;

fn parse_arch(name: &str) -> ArchKind {
    match name.to_ascii_lowercase().as_str() {
        "cnv" => ArchKind::Cnv,
        "ncnv" | "n-cnv" => ArchKind::NCnv,
        "ucnv" | "µ-cnv" | "μ-cnv" | "micro" => ArchKind::MicroCnv,
        other => {
            eprintln!("unknown architecture '{other}' (use cnv | ncnv | ucnv)");
            exit(2);
        }
    }
}

struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

/// Flags that take no value.
const BOOL_FLAGS: [&str; 3] = ["all-arches", "json", "dump-metrics"];

fn parse_args(raw: &[String]) -> Args {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if let Some(name) = raw[i].strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = raw.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("flag --{name} needs a value");
                exit(2);
            });
            flags.insert(name.to_string(), value);
            i += 2;
        } else {
            positional.push(raw[i].clone());
            i += 1;
        }
    }
    Args { flags, positional }
}

fn required<'a>(args: &'a Args, flag: &str) -> &'a str {
    args.flags.get(flag).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required flag --{flag}");
        exit(2);
    })
}

fn arch_of(args: &Args) -> Arch {
    parse_arch(required(args, "arch")).arch()
}

/// `--telemetry <dir>` → an event-buffering registry plus the artifact
/// directory it should be flushed to at the end of the command.
fn telemetry_of(args: &Args) -> Option<(bcp_telemetry::Registry, std::path::PathBuf)> {
    args.flags.get("telemetry").map(|dir| {
        (
            bcp_telemetry::Registry::with_event_buffer(),
            std::path::PathBuf::from(dir),
        )
    })
}

fn finish_telemetry(telemetry: Option<(bcp_telemetry::Registry, std::path::PathBuf)>) {
    if let Some((registry, dir)) = telemetry {
        let summary = registry.write_artifacts(&dir).unwrap_or_else(|e| {
            eprintln!("cannot write telemetry artifacts to {}: {e}", dir.display());
            exit(1);
        });
        eprint!("{}", registry.snapshot().render_text());
        eprintln!(
            "telemetry artifacts: {} and {}",
            summary.display(),
            dir.join("events.jsonl").display()
        );
    }
}

fn cmd_check(args: &Args) {
    use bcp_check::{check_arch, CheckConfig};
    let mut cfg = CheckConfig::default();
    if let Some(d) = args.flags.get("device") {
        cfg.device = Some(match d.to_ascii_lowercase().as_str() {
            "z7020" | "xc7z020" => bcp_finn::device::Z7020,
            "z7010" | "xc7z010" => bcp_finn::device::Z7010,
            other => {
                eprintln!("unknown device '{other}' (use z7020 | z7010)");
                exit(2);
            }
        });
    }
    if let Some(v) = args.flags.get("target-fps") {
        cfg.target_fps = v.parse().unwrap_or_else(|_| {
            eprintln!("--target-fps needs a number, got '{v}'");
            exit(2);
        });
    }
    if let Some(v) = args.flags.get("fifo-depth") {
        cfg.fifo_depth = v.parse().unwrap_or_else(|_| {
            eprintln!("--fifo-depth needs an integer, got '{v}'");
            exit(2);
        });
    }
    let kinds: Vec<ArchKind> = if args.flags.contains_key("all-arches") {
        ArchKind::ALL.to_vec()
    } else {
        vec![parse_arch(required(args, "arch"))]
    };
    let json = args.flags.contains_key("json");
    let mut reports = Vec::new();
    let mut failed = false;
    for kind in kinds {
        let report = check_arch(&kind.arch().spec(), &cfg);
        failed |= !report.is_clean();
        if json {
            reports.push(report);
        } else {
            print!("{}", report.render_text());
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string(&reports).expect("reports serialize")
        );
    }
    if failed {
        exit(1);
    }
}

fn cmd_train(args: &Args) {
    let kind = parse_arch(required(args, "arch"));
    let out = required(args, "out");
    let per_class: usize = args
        .flags
        .get("per-class")
        .map(|v| v.parse().expect("--per-class N"))
        .unwrap_or(100);
    let epochs: usize = args
        .flags
        .get("epochs")
        .map(|v| v.parse().expect("--epochs N"))
        .unwrap_or(8);
    let recipe = Recipe {
        train_per_class: per_class,
        test_per_class: per_class / 3 + 1,
        epochs,
        ..Recipe::quick(kind)
    };
    eprintln!(
        "training {} ({per_class}/class, {epochs} epochs)…",
        recipe.arch.name
    );
    let telemetry = telemetry_of(args);
    let mut model = run_instrumented(&recipe, telemetry.as_ref().map(|(r, _)| r), |s| {
        eprintln!(
            "  epoch {:>3}: loss {:.4}, train acc {:.1}%",
            s.epoch,
            s.loss,
            s.train_accuracy * 100.0
        );
    });
    eprintln!("test accuracy: {:.2}%", model.test_accuracy * 100.0);
    bcp_nn::serialize::save_json(&mut model.net, out).expect("writing checkpoint");
    eprintln!("checkpoint written to {out}");
    finish_telemetry(telemetry);
}

fn cmd_deploy(args: &Args) {
    let arch = arch_of(args);
    // Full static verification before any pipeline stage is constructed.
    let report = bcp_check::check_arch(&arch.spec(), &bcp_check::CheckConfig::default());
    if !report.is_clean() {
        eprint!("{}", report.render_text());
        eprintln!("static checks failed; refusing to deploy");
        exit(1);
    }
    let model_path = required(args, "model");
    let out = required(args, "out");
    let mut net = build_bnn(&arch, 0);
    bcp_nn::serialize::load_json(&mut net, model_path).expect("reading checkpoint");
    let predictor = BinaryCoP::from_trained(&net, &arch);
    predictor
        .save_image(out)
        .expect("writing accelerator image");
    eprintln!("{}", predictor.pipeline().describe());
    eprintln!("accelerator image written to {out}");
}

fn load_predictor(args: &Args) -> BinaryCoP {
    let arch = arch_of(args);
    let accel = required(args, "accel");
    BinaryCoP::load_image(accel, &arch).expect("reading accelerator image")
}

fn cmd_classify(args: &Args) {
    let telemetry = telemetry_of(args);
    let mut predictor = load_predictor(args);
    if let Some((registry, _)) = &telemetry {
        predictor = predictor.with_telemetry(registry.clone());
    }
    if args.positional.is_empty() {
        eprintln!("no input images (pass one or more .ppm files)");
        exit(2);
    }
    for path in &args.positional {
        let bytes = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1);
        });
        let img = decode_ppm(&bytes).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1);
        });
        let sized = resize_to(&img, predictor.arch().input_size);
        let class = predictor.classify(&sized);
        println!("{path}: {}", class.full_name());
    }
    finish_telemetry(telemetry);
}

fn cmd_info(args: &Args) {
    let predictor = if args.flags.contains_key("accel") {
        load_predictor(args)
    } else {
        // No trained image: report the architecture's models from an
        // untrained (but deployable) network.
        let arch = arch_of(args);
        let (net, arch) = {
            use bcp_nn::Mode;
            let mut net = build_bnn(&arch, 0);
            let x = bcp_tensor::init::uniform(
                bcp_tensor::Shape::nchw(2, 3, arch.input_size, arch.input_size),
                -1.0,
                1.0,
                1,
            );
            let _ = net.forward(&x, Mode::Train);
            (net, arch)
        };
        BinaryCoP::from_trained(&net, &arch)
    };
    print!("{}", predictor.pipeline().describe());
    println!("{}", predictor.summary());
    println!(
        "gate power @0.5 subjects/s: {:.3} W; crowd power: {:.2} W",
        predictor.board_power_w(OperatingMode::SingleGate {
            subjects_per_s: 0.5
        }),
        predictor.board_power_w(OperatingMode::CrowdStatistics),
    );
}

fn cmd_demo(args: &Args) {
    // Train tiny, deploy, classify a generated face — zero configuration.
    use bcp_dataset::{Dataset, GeneratorConfig, MaskClass};
    let recipe = Recipe {
        train_per_class: 60,
        test_per_class: 20,
        epochs: 8,
        ..Recipe::test_scale()
    };
    eprintln!("demo: training {} …", recipe.arch.name);
    let telemetry = telemetry_of(args);
    let model = run_instrumented(&recipe, telemetry.as_ref().map(|(r, _)| r), |_| {});
    eprintln!("test accuracy: {:.1}%", model.test_accuracy * 100.0);
    let mut predictor = BinaryCoP::from_trained(&model.net, &model.arch);
    if let Some((registry, _)) = &telemetry {
        predictor = predictor.with_telemetry(registry.clone());
    }
    let gen = GeneratorConfig {
        img_size: model.arch.input_size,
        supersample: 3,
    };
    let ds = Dataset::generate_balanced(&gen, 2, 0xDE30);
    for i in 0..ds.len() {
        println!(
            "true {:<24} → predicted {}",
            MaskClass::from_label(ds.labels[i]).full_name(),
            predictor.classify(&ds.image(i)).full_name()
        );
    }
    println!("{}", predictor.summary());
    finish_telemetry(telemetry);
}

/// `--flag N`-style integer with a default.
fn int_flag(args: &Args, flag: &str, default: usize) -> usize {
    args.flags
        .get(flag)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{flag} needs an integer, got '{v}'");
                exit(2);
            })
        })
        .unwrap_or(default)
}

/// Benchmark predictor: a trained accelerator image when `--accel` is
/// given, else an untrained (but deployable) network at `--arch` (default
/// tiny) — throughput does not depend on the weights.
fn bench_predictor(args: &Args) -> BinaryCoP {
    if args.flags.contains_key("accel") {
        load_predictor(args)
    } else {
        let arch = match args.flags.get("arch").map(String::as_str) {
            None | Some("tiny") => binarycop::recipe::tiny_arch(),
            Some(name) => parse_arch(name).arch(),
        };
        let mut net = build_bnn(&arch, 0);
        let x = bcp_tensor::init::uniform(
            bcp_tensor::Shape::nchw(2, 3, arch.input_size, arch.input_size),
            -1.0,
            1.0,
            1,
        );
        let _ = net.forward(&x, bcp_nn::Mode::Train);
        BinaryCoP::from_trained(&net, &arch)
    }
}

/// Deterministic synthetic camera frames at the predictor's input size.
fn bench_frames(predictor: &BinaryCoP, n_frames: usize, seed: u64) -> Vec<bcp_tensor::Tensor> {
    gateway_bench_frames(predictor.arch().input_size, n_frames, seed)
}

/// Drain an engine's tracer into trace artifacts under `dir`
/// (`trace.folded`, `trace.jsonl`, `report.txt`) and return the trace set
/// plus the rendered attribution report.
fn write_trace_artifacts(
    tracer: &bcp_trace::Tracer,
    dir: &std::path::Path,
    raw_compute_ns: Option<u64>,
) -> (bcp_trace::TraceSet, bcp_trace::AttributionReport) {
    let set = bcp_trace::TraceSet::new(tracer.drain(), tracer.dropped());
    if let Err(e) = bcp_trace::audit(&set.records) {
        eprintln!("BUG: trace audit failed: {e}");
        exit(1);
    }
    let report = bcp_trace::AttributionReport::from_traces(&set, raw_compute_ns);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", dir.display());
        exit(1);
    });
    let write = |name: &str, body: String| {
        std::fs::write(dir.join(name), body).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", dir.join(name).display());
            exit(1);
        });
    };
    write("trace.folded", set.to_folded());
    write("trace.jsonl", set.to_jsonl());
    write("report.txt", report.render_text());
    (set, report)
}

/// `bcp serve-bench`: closed-loop load against the micro-batching engine,
/// with a sequential single-caller baseline for comparison.
fn cmd_serve_bench(args: &Args) {
    use bcp_serve::{BackpressurePolicy, ServeConfig};
    use std::time::{Duration, Instant};

    let get = |flag: &str, default: usize| -> usize { int_flag(args, flag, default) };
    let workers = get("workers", 2).max(1);
    let clients = get("clients", 8).max(1);
    let requests = get("requests", 50).max(1);
    let n_frames = get("frames", 32).max(1);

    let mut cfg = ServeConfig::default();
    cfg.queue_cap = get("queue-cap", cfg.queue_cap).max(1);
    cfg.max_batch = get("max-batch", cfg.max_batch).max(1);
    cfg.max_wait =
        Duration::from_micros(get("max-wait-us", cfg.max_wait.as_micros() as usize) as u64);
    if let Some(p) = args.flags.get("policy") {
        cfg.policy = match p.to_ascii_lowercase().as_str() {
            "block" => BackpressurePolicy::Block,
            "reject" => BackpressurePolicy::Reject,
            "shed" => BackpressurePolicy::ShedOldest,
            other => {
                eprintln!("unknown policy '{other}' (use block | reject | shed)");
                exit(2);
            }
        };
    }
    if let Some(ms) = args.flags.get("deadline-ms") {
        cfg.deadline = Some(Duration::from_millis(ms.parse().unwrap_or_else(|_| {
            eprintln!("--deadline-ms needs an integer, got '{ms}'");
            exit(2);
        })));
    }
    if args.flags.contains_key("streaming-min-batch") {
        cfg.streaming_min_batch = Some(get("streaming-min-batch", 4).max(1));
    }
    let trace_dir = args.flags.get("trace").map(std::path::PathBuf::from);
    if trace_dir.is_some() {
        cfg.trace = Some(bcp_trace::TraceConfig {
            sample_rate: get("sample-rate", 64).max(1) as u64,
            ..bcp_trace::TraceConfig::default()
        });
    }
    let dump_metrics = args.flags.contains_key("dump-metrics");

    let telemetry = telemetry_of(args);
    let mut predictor = bench_predictor(args);
    if let Some((registry, _)) = &telemetry {
        predictor = predictor.with_telemetry(registry.clone());
    } else if trace_dir.is_some() || dump_metrics {
        // Trace counters and the metrics dump need a registry even when no
        // --telemetry artifacts were requested.
        predictor = predictor.with_telemetry(bcp_telemetry::Registry::new());
    }

    let frames = bench_frames(&predictor, n_frames, 0x5EEE);

    // Baseline: one caller, one frame in flight, no batching.
    let t0 = Instant::now();
    for f in &frames {
        let _ = predictor.classify(f);
    }
    let seq_fps = frames.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    println!(
        "sequential baseline: {:.1} fps ({} frames, 1 caller)",
        seq_fps,
        frames.len()
    );

    let engine = binarycop::serve::engine(&predictor, workers, cfg);
    let report = bcp_serve::run_closed_loop(&engine, &frames, clients, requests);
    engine.shutdown();
    println!("engine ({workers} workers):");
    println!("{}", report.render_text());
    println!(
        "speedup vs sequential: {:.2}x{}",
        report.throughput_fps / seq_fps.max(1e-9),
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            < 2
        {
            "  (single-core host: batching amortization only, no worker parallelism)"
        } else {
            ""
        }
    );
    if !report.accounted() {
        eprintln!("BUG: request accounting mismatch — lost or duplicated responses");
        exit(1);
    }
    println!(
        "response accounting: exact ({} submitted, {} resolved)",
        report.total, report.total
    );
    if let Some(stats) = engine.stream_stats() {
        println!(
            "cycle-model correlation under load ({} streamed frames):",
            stats.frames
        );
        print!(
            "{}",
            bcp_finn::correlation_report(predictor.pipeline(), &stats).render_text()
        );
    }
    if let (Some(dir), Some(tracer)) = (&trace_dir, engine.tracer()) {
        let raw_ns = (1e9 / seq_fps.max(1e-9)) as u64;
        let (set, trace_report) = write_trace_artifacts(&tracer, dir, Some(raw_ns));
        println!(
            "trace: {} records sampled at 1/{} ({} dropped) → {}",
            set.records.len(),
            tracer.config().sample_rate,
            set.dropped,
            dir.display()
        );
        print!("{}", trace_report.render_text());
    }
    if dump_metrics {
        if let Some(registry) = engine.registry() {
            print!("{}", registry.render_text());
        }
    }
    finish_telemetry(telemetry);
}

/// `bcp profile`: dedicated profiling run — every request traced
/// (sample rate 1 by default), flamegraph + waterfall + attribution
/// artifacts written to `--out`, and the engine's overhead priced against
/// a raw `classify_batch` baseline measured in the same process.
fn cmd_profile(args: &Args) {
    use bcp_serve::ServeConfig;
    use bcp_trace::{TimeSeriesSampler, TraceConfig};
    use std::time::{Duration, Instant};

    let get = |flag: &str, default: usize| -> usize { int_flag(args, flag, default) };
    let workers = get("workers", 2).max(1);
    let clients = get("clients", 8).max(1);
    let requests = get("requests", 40).max(1);
    let n_frames = get("frames", 32).max(1);
    let sample_rate = get("sample-rate", 1).max(1) as u64;
    let out_dir = std::path::PathBuf::from(
        args.flags
            .get("out")
            .map(String::as_str)
            .unwrap_or("profile-out"),
    );

    let registry = bcp_telemetry::Registry::new();
    let predictor = bench_predictor(args).with_telemetry(registry.clone());
    let frames = bench_frames(&predictor, n_frames, 0x920F);

    // Raw inference baseline: same frames, no engine, one caller calling
    // `classify_batch` directly. This is the denominator of the "exact
    // percentage the engine adds" line.
    let rounds = 3usize;
    let t0 = Instant::now();
    for _ in 0..rounds {
        let _ = predictor.classify_batch(&frames);
    }
    let raw_ns = (t0.elapsed().as_nanos() / (rounds as u128 * frames.len() as u128).max(1)) as u64;
    println!(
        "raw classify_batch baseline: {:.3} ms/frame ({} frames × {} rounds)",
        raw_ns as f64 / 1e6,
        frames.len(),
        rounds
    );

    let mut cfg = ServeConfig::default();
    cfg.max_batch = get("max-batch", cfg.max_batch).max(1);
    cfg.max_wait =
        Duration::from_micros(get("max-wait-us", cfg.max_wait.as_micros() as usize) as u64);
    if args.flags.contains_key("streaming-min-batch") {
        cfg.streaming_min_batch = Some(get("streaming-min-batch", 4).max(1));
    }
    cfg.trace = Some(TraceConfig {
        sample_rate,
        ..TraceConfig::default()
    });

    let engine = binarycop::serve::engine(&predictor, workers, cfg);
    // Queue-depth / worker-occupancy time series, probed off the hot path
    // through the registry's gauges.
    let depth = registry.gauge("serve.queue_depth");
    let states: Vec<bcp_telemetry::Gauge> = (0..workers)
        .map(|w| registry.gauge(&format!("serve.worker.{w}.state")))
        .collect();
    let sampler = TimeSeriesSampler::start(
        vec!["queue_depth".into(), "healthy_workers".into()],
        Duration::from_millis(2),
        move || {
            vec![
                depth.get().max(0.0) as u64,
                states.iter().filter(|s| s.get() == 0.0).count() as u64,
            ]
        },
    );

    let load = bcp_serve::run_closed_loop(&engine, &frames, clients, requests);
    let tracer = engine.tracer().expect("profile engine always traces");
    engine.shutdown();
    let series = sampler.stop();

    println!("engine ({workers} workers, {clients} clients):");
    println!("{}", load.render_text());
    if !load.accounted() {
        eprintln!("BUG: request accounting mismatch — lost or duplicated responses");
        exit(1);
    }

    let (set, report) = write_trace_artifacts(&tracer, &out_dir, Some(raw_ns));
    std::fs::write(out_dir.join("timeseries.jsonl"), series.to_jsonl()).unwrap_or_else(|e| {
        eprintln!("cannot write timeseries.jsonl: {e}");
        exit(1);
    });
    println!(
        "trace: {} records sampled at 1/{sample_rate} ({} dropped), audit ok",
        set.records.len(),
        set.dropped
    );
    println!(
        "queue depth peak {} / workers healthy min {} over {} samples",
        series.peak("queue_depth"),
        series
            .rows
            .iter()
            .filter_map(|r| r.values.get(1).copied())
            .min()
            .unwrap_or(0),
        series.rows.len()
    );
    print!("{}", report.render_text());
    print!("{}", set.render_waterfall(8));
    println!(
        "artifacts: {} (flamegraph: flamegraph.pl / speedscope on trace.folded)",
        out_dir.display()
    );
    for name in [
        "trace.folded",
        "trace.jsonl",
        "timeseries.jsonl",
        "report.txt",
    ] {
        println!("  {}", out_dir.join(name).display());
    }
}

/// Shared flag parsing for `gateway` / `gateway-bench`: shard specs from
/// the bench predictor plus the gateway configuration.
fn gateway_setup(
    args: &Args,
) -> (
    BinaryCoP,
    Vec<bcp_gateway::ShardSpec>,
    bcp_gateway::GatewayConfig,
) {
    use bcp_serve::{BackpressurePolicy, ServeConfig};
    use std::time::Duration;

    let get = |flag: &str, default: usize| -> usize { int_flag(args, flag, default) };
    let shards = get("shards", 3).max(1);
    let workers = get("workers", 1).max(1);

    let mut cfg = ServeConfig::default();
    cfg.queue_cap = get("queue-cap", cfg.queue_cap).max(1);
    cfg.max_batch = get("max-batch", cfg.max_batch).max(1);
    cfg.max_wait = Duration::from_micros(get("max-wait-us", 200) as u64);
    if let Some(p) = args.flags.get("policy") {
        cfg.policy = match p.to_ascii_lowercase().as_str() {
            "block" => BackpressurePolicy::Block,
            "reject" => BackpressurePolicy::Reject,
            "shed" => BackpressurePolicy::ShedOldest,
            other => {
                eprintln!("unknown policy '{other}' (use block | reject | shed)");
                exit(2);
            }
        };
    }

    let predictor = bench_predictor(args);
    let specs = binarycop::gateway::shard_specs(&predictor, shards, workers, cfg);

    let mut gw_cfg = bcp_gateway::GatewayConfig::default();
    if let Some(addr) = args.flags.get("addr") {
        gw_cfg.addr = addr.clone();
    }
    gw_cfg.default_deadline = Duration::from_millis(get("deadline-ms", 2_000) as u64);
    gw_cfg.read_timeout = Duration::from_millis(get("read-timeout-ms", 100) as u64);
    gw_cfg.probe_interval = Duration::from_millis(get("probe-interval-ms", 50) as u64);
    gw_cfg.tenant_policy = bcp_gateway::TenantPolicy {
        rate_per_s: get("tenant-rate", 100_000) as u64,
        burst: get("tenant-burst", 10_000) as u64,
        quota: args.flags.get("tenant-quota").map(|q| {
            q.parse().unwrap_or_else(|_| {
                eprintln!("--tenant-quota needs an integer, got '{q}'");
                exit(2);
            })
        }),
    };
    let s = predictor.arch().input_size;
    gw_cfg.probe_frame = Some(bcp_serve::canary_frame(3, s, s));
    (predictor, specs, gw_cfg)
}

/// `bcp gateway`: stand up the TCP front door and serve until
/// `--duration-s` elapses (0 = forever).
fn cmd_gateway(args: &Args) {
    let (predictor, specs, gw_cfg) = gateway_setup(args);
    let shards = specs.len();
    let registry = bcp_telemetry::Registry::new();
    let gateway = bcp_gateway::Gateway::start(specs, gw_cfg, Some(registry)).unwrap_or_else(|e| {
        eprintln!("cannot bind gateway: {e}");
        exit(1);
    });
    let s = predictor.arch().input_size;
    println!(
        "gateway listening on {} ({} shards, {s}×{s} input frames)",
        gateway.local_addr(),
        shards,
    );
    let duration_s = int_flag(args, "duration-s", 0);
    if duration_s == 0 {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    std::thread::sleep(std::time::Duration::from_secs(duration_s as u64));
    gateway.shutdown();
    println!("gateway drained after {duration_s}s");
}

/// `bcp scrub-bench`: measure the guard layer end to end — inject a known
/// fault population, report detection and repair rates against it, and
/// time scrub-interleaved inference against an undefended baseline.
/// Exits non-zero unless every injected fault is both detected and
/// repaired (CRC-32 guarantees this for the per-row flip counts any
/// realistic SEU rate produces).
fn cmd_scrub_bench(args: &Args) {
    use bcp_finn::fault::inject_random_faults;
    use bcp_finn::IntegrityFault;
    use std::collections::HashSet;
    use std::time::Instant;

    let get = |flag: &str, default: usize| -> usize {
        args.flags
            .get(flag)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--{flag} needs an integer, got '{v}'");
                    exit(2);
                })
            })
            .unwrap_or(default)
    };
    let faults = get("faults", 64).max(1);
    let seed = get("seed", 7) as u64;
    let n_frames = get("frames", 32).max(1);
    let units_per_frame = get("units", 8).max(1);

    let telemetry = telemetry_of(args);
    let arch = match args.flags.get("arch").map(String::as_str) {
        None | Some("tiny") => binarycop::recipe::tiny_arch(),
        Some(name) => parse_arch(name).arch(),
    };
    let mut net = build_bnn(&arch, 0);
    let x = bcp_tensor::init::uniform(
        bcp_tensor::Shape::nchw(2, 3, arch.input_size, arch.input_size),
        -1.0,
        1.0,
        1,
    );
    let _ = net.forward(&x, bcp_nn::Mode::Train);
    let mut predictor = BinaryCoP::from_trained(&net, &arch);
    if let Some((registry, _)) = &telemetry {
        predictor = predictor.with_telemetry(registry.clone());
    }
    let clean = predictor.clone();
    let mut scrubber = predictor.scrubber();
    println!(
        "guard state: {} scrub units over '{}', golden copy {} B ({} B raw)",
        scrubber.unit_count(),
        predictor.pipeline().name(),
        scrubber.store().stored_bytes(),
        scrubber.store().raw_bytes(),
    );

    // Inject a known fault population and audit against it.
    let records = inject_random_faults(predictor.pipeline_mut(), faults, seed);
    let expected: HashSet<(usize, usize)> = records.iter().map(|r| (r.stage, r.row)).collect();
    let found: HashSet<(usize, usize)> = scrubber
        .audit(predictor.pipeline())
        .into_iter()
        .filter_map(|f| match f {
            IntegrityFault::WeightRow { stage, row } => Some((stage, row)),
            IntegrityFault::Thresholds { .. } => None,
        })
        .collect();
    let detected = expected.intersection(&found).count();
    let detection_pct = 100.0 * detected as f64 / expected.len() as f64;
    println!(
        "detection: {detected}/{} corrupted rows localized ({detection_pct:.1}%), \
         {} false positives  [{faults} bit flips, seed {seed}]",
        expected.len(),
        found.difference(&expected).count(),
    );

    // Repair sweep, then prove bit-exactness against the clean twin.
    let t0 = Instant::now();
    let report = scrubber.full_sweep(predictor.pipeline_mut());
    let sweep = t0.elapsed();
    let repair_pct = if report.faults_detected == 0 {
        0.0
    } else {
        100.0 * report.faults_repaired as f64 / report.faults_detected as f64
    };
    let residual = scrubber.audit(predictor.pipeline()).len();
    println!(
        "repair: {}/{} rows restored ({repair_pct:.1}%), {} bits flipped back, \
         sweep {:.2} ms, {residual} residual faults",
        report.faults_repaired,
        report.faults_detected,
        report.bits_flipped,
        sweep.as_secs_f64() * 1e3,
    );

    // Scrub overhead: classify with a scrub tick interleaved per frame vs
    // the undefended loop.
    use bcp_dataset::{Dataset, GeneratorConfig};
    let gen = GeneratorConfig {
        img_size: predictor.arch().input_size,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, n_frames.div_ceil(4), 0x5C2B);
    let frames: Vec<bcp_tensor::Tensor> =
        (0..n_frames.min(ds.len())).map(|i| ds.image(i)).collect();
    // Warm caches first, then time the two loops in alternating rounds so
    // clock drift and cache effects hit both sides equally — otherwise the
    // cold first loop makes the overhead come out negative.
    for f in &frames {
        let _ = predictor.classify(f);
    }
    let mut undefended = std::time::Duration::ZERO;
    let mut defended = std::time::Duration::ZERO;
    const ROUNDS: usize = 5;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        for f in &frames {
            let _ = predictor.classify(f);
        }
        undefended += t0.elapsed();
        let t0 = Instant::now();
        for f in &frames {
            let _ = predictor.classify(f);
            scrubber.tick(predictor.pipeline_mut(), units_per_frame);
        }
        defended += t0.elapsed();
    }
    let overhead_pct = 100.0 * (defended.as_secs_f64() / undefended.as_secs_f64().max(1e-9) - 1.0);
    println!(
        "scrub overhead: {:.1} fps undefended → {:.1} fps with {units_per_frame} units/frame \
         ({overhead_pct:+.1}%)",
        (frames.len() * ROUNDS) as f64 / undefended.as_secs_f64().max(1e-9),
        (frames.len() * ROUNDS) as f64 / defended.as_secs_f64().max(1e-9),
    );

    // Sanity: the repaired pipeline classifies exactly like the clean twin.
    let divergent = frames
        .iter()
        .filter(|f| predictor.classify(f) != clean.classify(f))
        .count();
    println!(
        "post-repair agreement with clean pipeline: {}/{} frames",
        frames.len() - divergent,
        frames.len()
    );

    finish_telemetry(telemetry);
    if detected != expected.len() || repair_pct < 100.0 || residual > 0 || divergent > 0 {
        eprintln!("scrub-bench FAILED: detection or repair below 100%");
        exit(1);
    }
    println!("scrub-bench OK: 100% detection, 100% repair");
}

fn cmd_lint(args: &Args) {
    // Default to the workspace root the binary was built from, so
    // `cargo run -p binarycop --bin bcp -- lint` works from any cwd; CI
    // passes `--root .` explicitly.
    let root = args
        .flags
        .get("root")
        .cloned()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string());
    let report = bcp_check::lint::lint_workspace(std::path::Path::new(&root));
    if args.flags.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        print!("{}", report.render_text());
    }
    if !report.is_clean() {
        exit(1);
    }
}

fn cmd_audit(args: &Args) {
    // Same root defaulting as `lint`: the workspace the binary was built
    // from, unless CI passes `--root .`.
    let root = args
        .flags
        .get("root")
        .cloned()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string());
    let report = bcp_check::audit::audit_workspace(std::path::Path::new(&root));
    if args.flags.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        print!("{}", report.render_text());
    }
    if !report.is_clean() {
        exit(1);
    }
}

/// Deterministic bench frames regenerable in a child process from
/// `(img_size, n, seed)` alone — the parent ships expected labels, the
/// child rebuilds the identical frames.
fn gateway_bench_frames(img_size: usize, n: usize, seed: u64) -> Vec<bcp_tensor::Tensor> {
    use bcp_dataset::{Dataset, GeneratorConfig};
    let gen = GeneratorConfig {
        img_size,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, n.div_ceil(4), seed);
    (0..n.min(ds.len())).map(|i| ds.image(i)).collect()
}

/// Child (loadgen) mode of `gateway-bench`: closed-loop requests against
/// `--connect <addr>`, one `TALLY,…` CSV line on stdout at the end.
fn gateway_bench_client(args: &Args) {
    use bcp_gateway::GatewayClient;

    let addr = required(args, "connect").to_string();
    let get = |flag: &str, default: usize| -> usize { int_flag(args, flag, default) };
    let tenant = get("tenant", 1) as u32;
    let client_id = get("client-id", 0) as u64;
    let requests = get("requests", 50).max(1);
    let img_size = get("img-size", 16).max(4);
    let n_frames = get("frames", 16).max(1);
    let seed = get("seed", 0x6A7E) as u64;
    let spacing = std::time::Duration::from_micros(get("spacing-us", 2_000) as u64);
    let deadline_ms = get("deadline-ms", 2_000) as u32;
    let expect: Vec<u8> = args
        .flags
        .get("expect")
        .map(|csv| {
            csv.split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse().unwrap_or_else(|_| {
                        eprintln!("--expect wants a CSV of class labels, got '{s}'");
                        exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_default();

    let frames = gateway_bench_frames(img_size, n_frames, seed);
    let mut client = GatewayClient::connect(&addr).unwrap_or_else(|e| {
        eprintln!("client {client_id}: cannot connect to {addr}: {e}");
        exit(1);
    });
    let mut tally = bcp_gateway::Tally::default();
    for r in 0..requests {
        let k = r % frames.len();
        let id = (client_id << 32) | r as u64;
        match client.classify(tenant, id, deadline_ms, &frames[k]) {
            Ok(resp) => {
                if resp.request_id != id {
                    eprintln!("client {client_id}: response id mismatch");
                    exit(1);
                }
                tally.record(&resp, expect.get(k).copied());
            }
            Err(_) => tally.record_wire_error(),
        }
        if !spacing.is_zero() {
            std::thread::sleep(spacing);
        }
    }
    let counts: Vec<String> = tally.by_status.iter().map(u64::to_string).collect();
    println!(
        "TALLY,{},{},{}",
        counts.join(","),
        tally.wrong,
        tally.wire_errors
    );
}

/// `bcp gateway-bench`: multi-process closed-loop load against a live
/// gateway, with an optional deterministic chaos plan injected mid-run.
/// Asserts (exit 1 on violation): exactly one response per request, zero
/// wrong answers, exact client↔server counter reconciliation, and — after
/// the chaos window — full recovery (a verification burst must come back
/// all-Ok with correct classes).
fn cmd_gateway_bench(args: &Args) {
    if args.flags.contains_key("connect") {
        return gateway_bench_client(args);
    }
    use bcp_gateway::{chaos, ChaosEvent, ChaosPlan, GatewayClient, Status, Tally};
    use std::time::Instant;

    let get = |flag: &str, default: usize| -> usize { int_flag(args, flag, default) };
    let clients = get("clients", 4).max(1);
    let requests = get("requests", 80).max(1);
    let n_frames = get("frames", 16).max(1);
    let seed = get("seed", 0x6A7E) as u64;
    let spacing_us = get("spacing-us", 2_000);
    let deadline_ms = get("deadline-ms", 2_000);
    let plan = match args.flags.get("chaos") {
        Some(s) => ChaosPlan::parse(s).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        }),
        None => ChaosPlan::default(),
    };

    let (predictor, specs, gw_cfg) = gateway_setup(args);
    let shards = specs.len();
    let img_size = predictor.arch().input_size;
    let registry = bcp_telemetry::Registry::new();
    let gateway = bcp_gateway::Gateway::start(specs, gw_cfg.clone(), Some(registry.clone()))
        .unwrap_or_else(|e| {
            eprintln!("cannot bind gateway: {e}");
            exit(1);
        });
    let addr = gateway.local_addr().to_string();

    // Expected labels for the deterministic frame set, computed from the
    // same predictor the shards replicate — the zero-wrong-answers oracle.
    let frames = gateway_bench_frames(img_size, n_frames, seed);
    let expect: Vec<String> = frames
        .iter()
        .map(|f| predictor.classify(f).label().to_string())
        .collect();
    let expect_csv = expect.join(",");

    // Give client i a tenant whose affinity shard is i % shards, so every
    // shard (in particular any chaos-kill target) carries client load.
    let tenant_of: Vec<u32> = (0..clients)
        .map(|i| {
            (0u32..100_000)
                .find(|&t| gateway.router().preference(t).first() == Some(&(i % shards)))
                .unwrap_or(i as u32)
        })
        .collect();

    println!(
        "gateway-bench: {clients} client processes × {requests} requests, {shards} shards on {addr}"
    );
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own executable: {e}");
        exit(1);
    });
    let t0 = Instant::now();
    let children: Vec<std::process::Child> = (0..clients)
        .map(|i| {
            std::process::Command::new(&exe)
                .args([
                    "gateway-bench",
                    "--connect",
                    &addr,
                    "--client-id",
                    &i.to_string(),
                    "--tenant",
                    &tenant_of[i].to_string(),
                    "--requests",
                    &requests.to_string(),
                    "--img-size",
                    &img_size.to_string(),
                    "--frames",
                    &n_frames.to_string(),
                    "--seed",
                    &seed.to_string(),
                    "--spacing-us",
                    &spacing_us.to_string(),
                    "--deadline-ms",
                    &deadline_ms.to_string(),
                    "--expect",
                    &expect_csv,
                ])
                .stdout(std::process::Stdio::piped())
                .spawn()
                .unwrap_or_else(|e| {
                    eprintln!("cannot spawn loadgen child {i}: {e}");
                    exit(1);
                })
        })
        .collect();

    // Start the chaos clock only once every loadgen child is connected,
    // so plan times land inside the load window regardless of process
    // spawn latency.
    let barrier = Instant::now();
    loop {
        let active = registry
            .snapshot()
            .gauges
            .get("gateway.active_connections")
            .copied()
            .unwrap_or(0.0);
        if active as usize >= clients || barrier.elapsed() > std::time::Duration::from_secs(10) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // Chaos runs on this thread while the children hammer the door.
    let report = chaos::run(&plan, &gateway);

    let mut violations: Vec<String> = Vec::new();
    let mut merged = Tally::default();
    for (i, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().unwrap_or_else(|e| {
            eprintln!("loadgen child {i} failed: {e}");
            exit(1);
        });
        if !out.status.success() {
            violations.push(format!("client {i} exited with {}", out.status));
            continue;
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        let Some(tally) = stdout.lines().find_map(parse_tally_line) else {
            violations.push(format!("client {i} printed no TALLY line"));
            continue;
        };
        if tally.responses().saturating_add(tally.wire_errors) != requests as u64 {
            violations.push(format!(
                "client {i}: {} responses + {} wire errors != {requests} requests",
                tally.responses(),
                tally.wire_errors
            ));
        }
        merged.merge(&tally);
    }
    let wall = t0.elapsed();

    // Recovery: give the prober time to re-admit revived shards, then a
    // verification burst must come back entirely Ok and correct. The
    // burst runs as a tenant whose affinity is the kill target, so where
    // its responses come from proves the rebalance both ways: a revived
    // shard must rejoin the rotation, a still-dead one must stay out.
    let killed_shards: Vec<usize> = plan
        .events
        .iter()
        .filter_map(|e| match e {
            ChaosEvent::Kill { shard, .. } => Some(*shard),
            _ => None,
        })
        .collect();
    let revived_shards: Vec<usize> = plan
        .events
        .iter()
        .filter_map(|e| match e {
            ChaosEvent::Revive { shard, .. } => Some(*shard),
            _ => None,
        })
        .collect();
    std::thread::sleep(gw_cfg.probe_interval.saturating_mul(4));
    let burst_tenant = match killed_shards.first() {
        Some(&k) => (0u32..100_000)
            .find(|&t| gateway.router().preference(t).first() == Some(&k))
            .unwrap_or(990_001),
        None => 990_001,
    };
    let mut burst = Tally::default();
    let mut burst_shards: Vec<usize> = Vec::new();
    match GatewayClient::connect(&addr) {
        Ok(mut client) => {
            for (k, frame) in frames.iter().enumerate() {
                let id = 0xB00_0000u64 + k as u64;
                match client.classify(burst_tenant, id, deadline_ms as u32, frame) {
                    Ok(resp) => {
                        if resp.status == Status::Ok {
                            burst_shards.push(resp.shard as usize);
                        }
                        burst.record(&resp, expect[k].parse().ok());
                    }
                    Err(_) => burst.record_wire_error(),
                }
            }
        }
        Err(e) => violations.push(format!("verification burst cannot connect: {e}")),
    }
    if burst.count(Status::Ok) != frames.len() as u64 || burst.wrong != 0 {
        violations.push(format!(
            "recovery burst not clean: {} of {} Ok, {} wrong, {} wire errors",
            burst.count(Status::Ok),
            frames.len(),
            burst.wrong,
            burst.wire_errors
        ));
    }
    if let Some(&k) = killed_shards.first() {
        let rejoined = burst_shards.contains(&k);
        if revived_shards.contains(&k) && !rejoined {
            violations.push(format!(
                "shard {k} was revived but did not rejoin the rotation \
                 (burst answered by shards {burst_shards:?})"
            ));
        }
        if !revived_shards.contains(&k) && rejoined {
            violations.push(format!("shard {k} is dead but answered burst requests"));
        }
    }

    // Client-side invariants.
    if merged.wrong != 0 {
        violations.push(format!("{} wrong answers", merged.wrong));
    }
    if merged.wire_errors != 0 {
        violations.push(format!("{} client wire errors", merged.wire_errors));
    }
    if !report.clean() {
        violations.push(format!("chaos report not clean: {}", report.to_json()));
    }

    // Quiesce before auditing the books: engine workers bump serve.*
    // counters after completing a slot, so a snapshot racing the prober's
    // last ticket.wait() would lag shard-side accounting by one.
    gateway.shutdown();

    // Server-side reconciliation against gateway.* / serve.* telemetry.
    let snap = registry.snapshot();
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let sent_total = (clients * requests) as u64 + report.flood_sent + frames.len() as u64;
    if count("gateway.frames") != sent_total {
        violations.push(format!(
            "gateway.frames = {} but {sent_total} requests were sent",
            count("gateway.frames")
        ));
    }
    if count("gateway.frames") != count("gateway.responses") {
        violations.push(format!(
            "exactly-one-response broken: {} frames vs {} responses",
            count("gateway.frames"),
            count("gateway.responses")
        ));
    }
    let client_ok = merged
        .count(Status::Ok)
        .saturating_add(report.flood.count(Status::Ok))
        .saturating_add(burst.count(Status::Ok));
    if count("gateway.status.ok") != client_ok {
        violations.push(format!(
            "status ledger mismatch: gateway.status.ok = {} vs {client_ok} client Oks",
            count("gateway.status.ok")
        ));
    }
    let shard_ok: u64 = (0..shards)
        .map(|i| count(&format!("gateway.shard.{i}.ok")))
        .sum();
    if count("serve.ok") != shard_ok {
        violations.push(format!(
            "serve ledger mismatch: serve.ok = {} vs {} shard oks",
            count("serve.ok"),
            shard_ok
        ));
    }
    for &k in &killed_shards {
        if count(&format!("gateway.shard.{k}.killed")) == 0 {
            violations.push(format!(
                "chaos plan killed shard {k} but gateway.shard.{k}.killed is 0"
            ));
        }
    }

    let (p50, p95, p99, samples) = snap
        .histograms
        .get("gateway.latency_ns")
        .map(|h| (h.p50, h.p95, h.p99, h.count))
        .unwrap_or((0, 0, 0, 0));
    let fps = client_ok as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "throughput: {fps:.1} ok-responses/s over {:.2}s wall",
        wall.as_secs_f64()
    );
    println!(
        "gateway latency: p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms ({samples} samples)",
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
    );
    println!(
        "outcomes: ok {} throttled {} rejected {} shed {} expired {} no-healthy {} (failovers {}, retries {})",
        count("gateway.status.ok"),
        count("gateway.status.throttled"),
        count("gateway.status.rejected"),
        count("gateway.status.shed"),
        count("gateway.status.deadline_expired"),
        count("gateway.status.no_healthy_shard"),
        count("gateway.failovers"),
        count("gateway.retries"),
    );
    if !killed_shards.is_empty() {
        println!(
            "chaos: {} kills / {} revives, recovery burst {}/{} Ok (answered by shards {:?})",
            report.kills,
            report.revives,
            burst.count(Status::Ok),
            frames.len(),
            burst_shards,
        );
    }

    if let Some(path) = args.flags.get("json-out") {
        let json = format!(
            "{{\"clients\":{clients},\"requests\":{requests},\"shards\":{shards},\
             \"wall_s\":{:.4},\"ok_per_s\":{fps:.2},\
             \"latency_ns\":{{\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"count\":{samples}}},\
             \"tally\":{},\"burst\":{},\"chaos\":{},\
             \"failovers\":{},\"retries\":{},\"frames\":{},\"responses\":{},\
             \"violations\":{}}}",
            wall.as_secs_f64(),
            merged.to_json(),
            burst.to_json(),
            report.to_json(),
            count("gateway.failovers"),
            count("gateway.retries"),
            count("gateway.frames"),
            count("gateway.responses"),
            violations.len(),
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("bench artifact: {path}");
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        exit(1);
    }
    println!("all gateway-bench assertions held");
}

/// Parse a child's `TALLY,…` CSV line back into a [`bcp_gateway::Tally`].
fn parse_tally_line(line: &str) -> Option<bcp_gateway::Tally> {
    let rest = line.strip_prefix("TALLY,")?;
    let fields: Vec<u64> = rest
        .split(',')
        .map(|f| f.parse().ok())
        .collect::<Option<_>>()?;
    if fields.len() != 12 {
        return None;
    }
    let mut tally = bcp_gateway::Tally::default();
    tally.by_status.copy_from_slice(&fields[0..10]);
    tally.wrong = fields[10];
    tally.wire_errors = fields[11];
    Some(tally)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let command = raw.first().cloned().unwrap_or_default();
    let args = parse_args(&raw[1.min(raw.len())..]);
    match command.as_str() {
        "check" => cmd_check(&args),
        "train" => cmd_train(&args),
        "deploy" => cmd_deploy(&args),
        "classify" => cmd_classify(&args),
        "info" => cmd_info(&args),
        "demo" => cmd_demo(&args),
        "serve-bench" => cmd_serve_bench(&args),
        "gateway" => cmd_gateway(&args),
        "gateway-bench" => cmd_gateway_bench(&args),
        "profile" => cmd_profile(&args),
        "scrub-bench" => cmd_scrub_bench(&args),
        "lint" => cmd_lint(&args),
        "audit" => cmd_audit(&args),
        _ => {
            eprintln!(
                "usage: bcp <check|train|deploy|classify|info|demo|serve-bench|gateway|gateway-bench|profile|scrub-bench|lint|audit> [flags]"
            );
            eprintln!(
                "  bcp check    --arch ncnv | --all-arches [--device z7020|z7010] \
                 [--target-fps 30] [--fifo-depth 4] [--json]"
            );
            eprintln!("  bcp train    --arch ncnv --out model.json [--per-class 100] [--epochs 8]");
            eprintln!("  bcp deploy   --arch ncnv --model model.json --out accel.json");
            eprintln!("  bcp classify --arch ncnv --accel accel.json face.ppm …");
            eprintln!("  bcp info     --arch ncnv [--accel accel.json]");
            eprintln!("  bcp demo");
            eprintln!(
                "  bcp serve-bench [--arch tiny|cnv|ncnv|ucnv | --arch <a> --accel accel.json] \
                 [--workers 2] [--clients 8] [--requests 50] [--frames 32] [--max-batch 8] \
                 [--max-wait-us 500] [--queue-cap 64] [--policy block|reject|shed] \
                 [--deadline-ms N] [--streaming-min-batch N] [--trace <dir>] \
                 [--sample-rate 64] [--dump-metrics]"
            );
            eprintln!(
                "  bcp gateway  [--arch tiny|…] [--shards 3] [--workers 1] [--addr 127.0.0.1:0] \
                 [--deadline-ms 2000] [--read-timeout-ms 100] [--probe-interval-ms 50] \
                 [--tenant-rate N] [--tenant-burst N] [--tenant-quota N] [--duration-s 0]"
            );
            eprintln!(
                "  bcp gateway-bench [--shards 3] [--workers 1] [--clients 4] [--requests 80] \
                 [--frames 16] [--seed N] [--spacing-us 2000] [--deadline-ms 2000] \
                 [--chaos \"kill:1@150;revive:1@600\"] [--json-out bench.json]"
            );
            eprintln!(
                "  bcp profile  [--arch tiny|cnv|ncnv|ucnv] [--workers 2] [--clients 8] \
                 [--requests 40] [--frames 32] [--sample-rate 1] [--max-batch 8] \
                 [--max-wait-us 500] [--streaming-min-batch N] [--out profile-out]"
            );
            eprintln!(
                "  bcp scrub-bench [--arch tiny|cnv|ncnv|ucnv] [--faults 64] [--seed 7] \
                 [--frames 32] [--units 8]"
            );
            eprintln!("  bcp lint     [--root <workspace-dir>] [--json]");
            eprintln!(
                "  (train/classify/demo/serve-bench/scrub-bench also take --telemetry <dir> \
                 for JSONL metrics)"
            );
            exit(2);
        }
    }
}
