//! Experiment runner: regenerate every table and figure of the paper.
//!
//! ```text
//! experiments table1                  # Table I
//! experiments table2 [--quick|--full] # Table II (trains the 3 BNNs)
//! experiments fig1                    # pipeline schematic (Fig. 1)
//! experiments fig2 [--quick|--full]   # confusion matrix (Fig. 2)
//! experiments gradcam [3..9|all] [--ppm DIR]   # Figs. 3–9
//! experiments perf                    # throughput/power claims
//! experiments dataset                 # Sec. IV-A dataset pipeline
//! experiments all [--quick]           # everything at quick scale
//! ```
//!
//! `--quick` (default) trains small synthetic sets for seconds-scale runs;
//! `--full` approaches the paper's scale and can take hours.

use bcp_nn::Sequential;
use binarycop::arch::ArchKind;
use binarycop::eval::render_fig2;
use binarycop::experiments::{
    dataset_report, fig1_report, gradcam_figure_ppms, gradcam_figure_report, perf_power_report,
    robustness_report, robustness_sweep, table1_report, table2_report, table2_rows,
    variant_ablation,
};
use binarycop::recipe::{run, Recipe, TrainedModel};
use std::path::PathBuf;

struct Options {
    quick: bool,
    resources_only: bool,
    ppm_dir: Option<PathBuf>,
    figures: Vec<u8>,
}

fn parse(args: &[String]) -> (String, Options) {
    let command = args.first().cloned().unwrap_or_else(|| "all".into());
    let mut opts = Options {
        quick: true,
        resources_only: false,
        ppm_dir: None,
        figures: (3..=9).collect(),
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            "--resources-only" => opts.resources_only = true,
            "--ppm" => {
                i += 1;
                opts.ppm_dir = Some(PathBuf::from(args.get(i).expect("--ppm needs a directory")));
            }
            "all" => opts.figures = (3..=9).collect(),
            f if f.parse::<u8>().is_ok() => {
                let n = f.parse::<u8>().unwrap();
                assert!((3..=9).contains(&n), "figures are numbered 3–9");
                opts.figures = vec![n];
            }
            other => panic!("unknown option '{other}'"),
        }
        i += 1;
    }
    (command, opts)
}

fn recipe_for(kind: ArchKind, quick: bool) -> Recipe {
    if quick {
        Recipe::quick(kind)
    } else {
        Recipe::paper_scale(kind)
    }
}

fn train_logged(recipe: &Recipe, label: &str) -> TrainedModel {
    eprintln!(
        "[train] {label}: {}/class train (+{} aug), {} epochs",
        recipe.train_per_class, recipe.augment_copies, recipe.epochs
    );
    let model = run(recipe, |s| {
        eprintln!(
            "[train] {label} epoch {:>3}: loss {:.4}, train acc {:.1}%",
            s.epoch,
            s.loss,
            s.train_accuracy * 100.0
        );
    });
    eprintln!(
        "[train] {label} done: test accuracy {:.2}%",
        model.test_accuracy * 100.0
    );
    model
}

fn cmd_table2(quick: bool, resources_only: bool) {
    if resources_only {
        println!("{}", table2_report(&table2_rows(&[None, None, None])));
        return;
    }
    let mut accs = [None, None, None];
    let mut trained: Vec<TrainedModel> = Vec::new();
    for (i, kind) in ArchKind::ALL.iter().enumerate() {
        let model = train_logged(&recipe_for(*kind, quick), &kind.arch().name);
        accs[i] = Some(model.test_accuracy);
        trained.push(model);
    }
    println!("{}", table2_report(&table2_rows(&accs)));
}

fn cmd_fig2(quick: bool) {
    let model = train_logged(&recipe_for(ArchKind::Cnv, quick), "CNV");
    println!("Fig. 2: confusion matrix of Binary-CoP-CNV on the test set");
    println!("overall accuracy: {:.2}%\n", model.test_accuracy * 100.0);
    println!("{}", render_fig2(&model.confusion));
}

fn cmd_gradcam(opts: &Options) {
    // Train the three Grad-CAM columns: CNV, n-CNV, FP32-CNV.
    let cnv = train_logged(&recipe_for(ArchKind::Cnv, opts.quick), "CNV");
    let ncnv = train_logged(&recipe_for(ArchKind::NCnv, opts.quick), "n-CNV");
    let fp32 = train_logged(&recipe_for(ArchKind::Cnv, opts.quick).as_fp32(), "FP32");
    let mut nets: Vec<(String, Sequential)> = vec![
        ("BCoP-CNV".into(), cnv.net),
        ("BCoP-n-CNV".into(), ncnv.net),
        ("FP32".into(), fp32.net),
    ];
    for &fig in &opts.figures {
        // conv4 is conv2_2 in the paper's naming (the Grad-CAM target).
        let mut models: Vec<(&str, &mut Sequential, &str)> = nets
            .iter_mut()
            .map(|(n, net)| (n.as_str(), net, "conv4"))
            .collect();
        println!(
            "{}",
            gradcam_figure_report(fig, 32, 1000 + fig as u64, &mut models)
        );
        if let Some(dir) = &opts.ppm_dir {
            let files = gradcam_figure_ppms(fig, 32, 1000 + fig as u64, &mut models, dir)
                .expect("writing PPM artifacts");
            eprintln!(
                "[gradcam] wrote {} PPM files under {}",
                files.len(),
                dir.display()
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, opts) = parse(&args);
    match command.as_str() {
        "table1" => println!("{}", table1_report()),
        "table2" => cmd_table2(opts.quick, opts.resources_only),
        "fig1" => {
            for kind in ArchKind::ALL {
                println!("{}", fig1_report(kind));
            }
        }
        "fig2" => cmd_fig2(opts.quick),
        "gradcam" => cmd_gradcam(&opts),
        "perf" | "power" => println!("{}", perf_power_report()),
        "robustness" => {
            // Train n-CNV at a modest scale, then sweep weight-bit faults.
            let model = train_logged(
                &Recipe {
                    train_per_class: if opts.quick { 80 } else { 1000 },
                    epochs: if opts.quick { 8 } else { 60 },
                    ..Recipe::quick(ArchKind::NCnv)
                },
                "n-CNV",
            );
            let total = model.arch.weight_bits() as usize;
            let counts: Vec<usize> = vec![0, total / 1000, total / 200, total / 50, total / 10];
            let points = robustness_sweep(&model.net, &model.arch, &counts, 40, 11);
            println!("{}", robustness_report(&model.arch.name, &points));
        }
        "focus" => {
            let model = train_logged(
                &Recipe {
                    train_per_class: if opts.quick { 80 } else { 1000 },
                    epochs: if opts.quick { 8 } else { 60 },
                    ..Recipe::quick(ArchKind::NCnv)
                },
                "n-CNV",
            );
            let mut net = model.net;
            println!(
                "{}",
                binarycop::experiments::attention_focus_report(&mut net, &model.test_set, "conv4")
            );
        }
        "variants" => {
            let arch = ArchKind::NCnv.arch();
            let (t, e) = if opts.quick { (60, 8) } else { (500, 40) };
            println!("{}", variant_ablation(&arch, t, 25, e, 42));
        }
        "dataset" => println!(
            "{}",
            dataset_report(if opts.quick { 2_000 } else { 133_783 }, 7)
        ),
        "all" => {
            println!("{}", table1_report());
            println!("{}", fig1_report(ArchKind::NCnv));
            println!("{}", perf_power_report());
            println!("{}", dataset_report(2_000, 7));
            cmd_fig2(opts.quick);
            cmd_table2(opts.quick, opts.resources_only);
            cmd_gradcam(&opts);
        }
        other => {
            eprintln!(
                "unknown command '{other}'. Commands: table1 table2 fig1 fig2 gradcam perf robustness variants dataset all"
            );
            std::process::exit(2);
        }
    }
}
