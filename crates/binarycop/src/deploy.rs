//! Trained network → FINN pipeline export.
//!
//! This is the software half of the paper's hardware-software co-design:
//! latent weights binarize into packed bit matrices (Eq. 1/2), each
//! batch-norm folds into an integer threshold bank (Sec. III-A), max-pools
//! become OR-pool stages, and every MVTU receives its Table I PE/SIMD
//! folding. The first conv stage consumes 8-bit camera pixels, so its
//! thresholds absorb the ×255 input scale.

use crate::arch::{Arch, K};
use bcp_bitpack::pack::pack_matrix;
use bcp_bitpack::{BitMatrix, ThresholdUnit};
use bcp_finn::mvtu::{BinaryMvtu, FixedInputMvtu};
use bcp_finn::threshold::scaled_threshold_unit;
use bcp_finn::{Pipeline, Stage};
use bcp_nn::batchnorm::{BatchNorm, BN_EPS};
use bcp_nn::conv::BinaryConv2d;
use bcp_nn::linear::BinaryLinear;
use bcp_nn::Sequential;

/// The integer scale of the first stage's accumulators relative to the
/// float network (see `bcp_finn::data::INPUT_SCALE`).
pub const FIRST_LAYER_SCALE: f64 = 255.0;

/// Packed binary weight matrix of conv layer `i` (0-based): rows = C_out,
/// cols = C_in·K·K in (channel, ky, kx) order — the SWU window order.
pub fn conv_weight_matrix(net: &Sequential, arch: &Arch, i: usize) -> BitMatrix {
    let name = format!("conv{}", i + 1);
    let idx = net
        .index_of(&name)
        .unwrap_or_else(|| panic!("network has no layer '{name}'"));
    let conv = net
        .layer_as::<BinaryConv2d>(idx)
        .unwrap_or_else(|| panic!("layer '{name}' is not a BinaryConv2d"));
    let c = &arch.convs[i];
    let w = conv.binary_weight();
    pack_matrix(c.c_out, c.c_in * K * K, w.as_slice())
}

/// Packed binary weight matrix of FC layer `i` (0-based).
pub fn fc_weight_matrix(net: &Sequential, arch: &Arch, i: usize) -> BitMatrix {
    let name = format!("fc{}", i + 1);
    let idx = net
        .index_of(&name)
        .unwrap_or_else(|| panic!("network has no layer '{name}'"));
    let fc = net
        .layer_as::<BinaryLinear>(idx)
        .unwrap_or_else(|| panic!("layer '{name}' is not a BinaryLinear"));
    let f = &arch.fcs[i];
    let w = fc.binary_weight();
    pack_matrix(f.f_out, f.f_in, w.as_slice())
}

/// Threshold bank folded from the batch-norm that follows layer
/// `bn_name`, with the given accumulator scale.
pub fn thresholds_from_bn(net: &Sequential, bn_name: &str, scale: f64) -> ThresholdUnit {
    let idx = net
        .index_of(bn_name)
        .unwrap_or_else(|| panic!("network has no layer '{bn_name}'"));
    let bn = net
        .layer_as::<BatchNorm>(idx)
        .unwrap_or_else(|| panic!("layer '{bn_name}' is not a BatchNorm"));
    scaled_threshold_unit(
        bn.gamma(),
        bn.beta(),
        bn.running_mean(),
        bn.running_var(),
        BN_EPS,
        scale,
    )
}

/// Export a trained BNN as a FINN pipeline, refusing with the checker's
/// typed diagnostics when the architecture's graph is inconsistent.
/// Network/architecture *mismatches* (missing layers, wrong layer kinds)
/// still panic — they are programming errors, not design findings.
///
/// The shape band (`BCP00x`) gates construction; scheduling and resource
/// findings do not, because non-divisor foldings and foreign devices are
/// functionally legal (run [`bcp_check::check_arch`] or `bcp check` for
/// the full verdict).
pub fn try_deploy(net: &Sequential, arch: &Arch) -> Result<Pipeline, Vec<bcp_check::Diagnostic>> {
    arch.try_validate()?;
    Ok(build_pipeline(net, arch))
}

/// Panicking wrapper over [`try_deploy`] with the checker's rendered
/// diagnostics as the panic message.
pub fn deploy(net: &Sequential, arch: &Arch) -> Pipeline {
    match try_deploy(net, arch) {
        Ok(p) => p,
        Err(diags) => {
            let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
            panic!(
                "cannot deploy {}: architecture failed static checks\n{}",
                arch.name,
                rendered.join("\n")
            );
        }
    }
}

/// Stage construction shared by [`deploy`]/[`try_deploy`]; assumes the
/// architecture's shape already checked out.
fn build_pipeline(net: &Sequential, arch: &Arch) -> Pipeline {
    let mut stages = Vec::new();
    let mut hw = arch.input_size;
    let mut pool_idx = 0usize;
    for (i, conv) in arch.convs.iter().enumerate() {
        let weights = conv_weight_matrix(net, arch, i);
        let folding = arch.folding(i);
        let bn = format!("bn_conv{}", i + 1);
        if i == 0 {
            let thresholds = thresholds_from_bn(net, &bn, FIRST_LAYER_SCALE);
            stages.push(Stage::ConvFixed {
                name: format!("conv{}", i + 1),
                mvtu: FixedInputMvtu::new(weights, thresholds, folding),
                k: K,
                in_dims: (conv.c_in, hw, hw),
            });
        } else {
            let thresholds = thresholds_from_bn(net, &bn, 1.0);
            stages.push(Stage::ConvBinary {
                name: format!("conv{}", i + 1),
                mvtu: BinaryMvtu::new(weights, Some(thresholds), folding),
                k: K,
                in_dims: (conv.c_in, hw, hw),
            });
        }
        hw -= K - 1;
        if conv.pool_after {
            pool_idx += 1;
            stages.push(Stage::PoolOr {
                name: format!("pool{pool_idx}"),
                k: 2,
                in_dims: (conv.c_out, hw, hw),
            });
            hw /= 2;
        }
    }
    let n_fc = arch.fcs.len();
    for i in 0..n_fc {
        let weights = fc_weight_matrix(net, arch, i);
        let folding = arch.folding(arch.convs.len() + i);
        let name = format!("fc{}", i + 1);
        if i + 1 < n_fc {
            let thresholds = thresholds_from_bn(net, &format!("bn_fc{}", i + 1), 1.0);
            stages.push(Stage::DenseBinary {
                name,
                mvtu: BinaryMvtu::new(weights, Some(thresholds), folding),
            });
        } else {
            stages.push(Stage::DenseLogits {
                name,
                mvtu: BinaryMvtu::new(weights, None, folding),
            });
        }
    }
    Pipeline::new(arch.name.clone(), stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchKind;
    use crate::model::build_bnn;
    use bcp_finn::data::QuantMap;
    use bcp_nn::Mode;
    use bcp_tensor::{Shape, Tensor};

    /// Run one train step so batch-norm stats are non-trivial, then export.
    fn trained_net_and_pipeline(kind: ArchKind, seed: u64) -> (Sequential, Pipeline) {
        let arch = kind.arch();
        let mut net = build_bnn(&arch, seed);
        let x = bcp_tensor::init::uniform(Shape::nchw(4, 3, 32, 32), -1.0, 1.0, seed + 9);
        let _ = net.forward(&x, Mode::Train); // populate running stats
        let p = deploy(&net, &arch);
        (net, p)
    }

    fn quant_image(seed: u64) -> (QuantMap, Tensor) {
        // An image on the u8 grid plus its normalized float twin.
        let px: Vec<f32> = (0..3 * 32 * 32)
            .map(|i| {
                let q = ((i as u64)
                    .wrapping_mul(seed * 2 + 1)
                    .wrapping_mul(2654435761)
                    >> 24)
                    % 256;
                q as f32 / 255.0
            })
            .collect();
        let qm = QuantMap::from_unit_floats(3, 32, 32, &px);
        let norm: Vec<f32> = px.iter().map(|v| 2.0 * v - 1.0).collect();
        (qm, Tensor::from_vec(Shape::nchw(1, 3, 32, 32), norm))
    }

    #[test]
    fn deploy_builds_valid_pipelines_for_all_archs() {
        for kind in ArchKind::ALL {
            let (_, p) = trained_net_and_pipeline(kind, 3);
            let (qm, _) = quant_image(1);
            let logits = p.forward(&qm);
            assert_eq!(logits.len(), 4, "{kind:?}");
        }
    }

    #[test]
    fn pipeline_stage_count_matches_arch() {
        let arch = ArchKind::Cnv.arch();
        let (_, p) = trained_net_and_pipeline(ArchKind::Cnv, 5);
        let pools = arch.convs.iter().filter(|c| c.pool_after).count();
        assert_eq!(p.stages().len(), arch.convs.len() + arch.fcs.len() + pools);
    }

    #[test]
    fn deployed_classification_matches_reference_network() {
        // The core co-design claim: the integer XNOR pipeline classifies
        // like the trained float-path BNN. (Bit-exactness against the
        // independent integer evaluator is proven in reference.rs; here we
        // check the float network agrees on classes.)
        let (mut net, p) = trained_net_and_pipeline(ArchKind::NCnv, 7);
        let mut agree = 0usize;
        let n = 24;
        for s in 0..n {
            let (qm, xf) = quant_image(s as u64 + 11);
            let hw_class = p.classify(&qm);
            let logits = net.forward(&xf, Mode::Eval);
            let sw_class = bcp_tensor::ops::argmax(logits.as_slice());
            if hw_class == sw_class {
                agree += 1;
            }
        }
        assert!(
            agree >= n - 1,
            "pipeline and reference network disagree on {}/{n} frames",
            n - agree
        );
    }

    #[test]
    fn first_stage_consumes_quantized_input() {
        let (_, p) = trained_net_and_pipeline(ArchKind::MicroCnv, 2);
        assert!(matches!(p.stages()[0], Stage::ConvFixed { .. }));
        assert!(matches!(
            p.stages().last().unwrap(),
            Stage::DenseLogits { .. }
        ));
    }

    #[test]
    fn folding_choice_never_changes_results() {
        // The PE/SIMD dimensioning is a scheduling decision: deploying the
        // same trained network with completely different foldings must
        // classify identically (only cycles change).
        let arch_a = ArchKind::MicroCnv.arch();
        let mut arch_b = arch_a.clone();
        arch_b.pe = vec![1; arch_b.pe.len()];
        arch_b.simd = vec![1; arch_b.simd.len()];
        let mut net = build_bnn(&arch_a, 13);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 32, 32), -1.0, 1.0, 14);
        let _ = net.forward(&x, Mode::Train);
        let pa = deploy(&net, &arch_a);
        let pb = deploy(&net, &arch_b);
        for s in 0..4 {
            let (qm, _) = quant_image(s + 77);
            assert_eq!(pa.forward(&qm), pb.forward(&qm));
        }
        // But the timing differs: sequential folding is far slower.
        use bcp_finn::perf::CLOCK_100MHZ;
        assert!(
            CLOCK_100MHZ.analyze(&pb).initiation_interval
                > CLOCK_100MHZ.analyze(&pa).initiation_interval
        );
    }

    #[test]
    #[should_panic(expected = "no layer 'conv1'")]
    fn deploy_requires_matching_network() {
        let arch = ArchKind::NCnv.arch();
        let net = Sequential::new("empty");
        deploy(&net, &arch);
    }

    #[test]
    fn try_deploy_refuses_broken_arch_with_diagnostics() {
        let mut arch = ArchKind::NCnv.arch();
        arch.fcs[0].f_in = 65; // no longer the flattened conv output
        let net = build_bnn(&ArchKind::NCnv.arch(), 3);
        let Err(diags) = try_deploy(&net, &arch) else {
            panic!("flatten mismatch must be refused");
        };
        assert!(diags
            .iter()
            .any(|d| d.code == bcp_check::Code::FlattenMismatch));
    }

    #[test]
    fn deployed_seed_pipelines_pass_the_full_static_check() {
        // The tentpole acceptance at pipeline level: every published arch,
        // once deployed, is clean under the complete analysis suite on its
        // paper target device (threshold soundness runs on the real folded
        // thresholds, so the net is briefly trained first).
        for kind in ArchKind::ALL {
            let arch = kind.arch();
            let (_, p) = trained_net_and_pipeline(kind, 11);
            let report =
                bcp_check::check_pipeline(&p, arch.dsp_offload, &bcp_check::CheckConfig::default());
            assert!(report.is_clean(), "{}", report.render_text());
        }
    }
}
