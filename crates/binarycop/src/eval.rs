//! Evaluation helpers: accuracy and the Fig. 2 confusion matrix.

use bcp_dataset::{Dataset, MaskClass};
use bcp_nn::metrics::ConfusionMatrix;
use bcp_nn::train::evaluate;
use bcp_nn::Sequential;

/// Evaluate a network on a dataset (eval mode, batched); returns accuracy
/// and the 4-class confusion matrix.
pub fn confusion_matrix(
    net: &mut Sequential,
    ds: &Dataset,
    batch_size: usize,
) -> (f32, ConfusionMatrix) {
    let mut cm = ConfusionMatrix::new(4);
    let images = ds.normalized_images();
    let acc = evaluate(net, &images, &ds.labels, batch_size, Some(&mut cm));
    (acc, cm)
}

/// Render a confusion matrix in the paper's Fig. 2 layout, with the mask
/// class names on both axes.
pub fn render_fig2(cm: &ConfusionMatrix) -> String {
    let names: Vec<&str> = MaskClass::ALL.iter().map(|c| c.short_name()).collect();
    cm.render(&names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_bnn;
    use crate::recipe::tiny_arch;
    use bcp_dataset::GeneratorConfig;

    #[test]
    fn untrained_network_is_near_chance() {
        let arch = tiny_arch();
        let mut net = build_bnn(&arch, 1);
        let gen = GeneratorConfig {
            img_size: arch.input_size,
            supersample: 2,
        };
        let ds = Dataset::generate_balanced(&gen, 16, 3);
        let (acc, cm) = confusion_matrix(&mut net, &ds, 16);
        assert_eq!(cm.total(), 64);
        assert!((cm.accuracy() as f32 - acc).abs() < 1e-5);
        assert!(acc < 0.7, "untrained accuracy {acc} suspiciously high");
    }

    #[test]
    fn fig2_rendering_uses_class_names() {
        let mut cm = ConfusionMatrix::new(4);
        cm.record(0, 0);
        cm.record(2, 3);
        let s = render_fig2(&cm);
        for name in ["Correct", "Nose", "N+M", "Chin"] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
    }
}
