//! Regeneration entry points for every table and figure in the paper.
//!
//! Each function returns a report string (and, where useful, structured
//! rows) so the `experiments` binary, the examples and the criterion
//! benches all share one implementation. EXPERIMENTS.md records the
//! paper-vs-measured comparison produced by these.

use crate::arch::{Arch, ArchKind};
use crate::deploy::deploy;
use crate::model::build_bnn;
use bcp_dataset::canvas::Rgb;
use bcp_dataset::face::{AgeGroup, FaceParams, Headgear, MASK_BLUE};
use bcp_dataset::generator::{render_sample, GeneratorConfig, SampleSpec};
use bcp_dataset::mask::{place_mask, MaskParams};
use bcp_dataset::{Dataset, MaskClass};
use bcp_finn::device::{ResourceUsage, Z7010, Z7020};
use bcp_finn::perf::CLOCK_100MHZ;
use bcp_finn::power::{PowerModel, DEFAULT_POWER};
use bcp_finn::resource::estimate;
use bcp_gradcam::{gradcam, heat_centroid};
use bcp_nn::{Mode, Sequential};
use bcp_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Render Table I: the three architectures with their PE/SIMD dimensioning
/// plus derived facts (weight bits, layer geometry).
pub fn table1_report() -> String {
    let mut s = String::from("TABLE I: Network architectures and hardware dimensioning\n\n");
    for kind in ArchKind::ALL {
        let arch = kind.arch();
        s.push_str(&arch.table1_column());
        s.push_str(&format!(
            "  weight memory: {} bits ({:.1} KiB binary vs {:.1} KiB float32 — ×32)\n\n",
            arch.weight_bits(),
            arch.weight_bits() as f64 / 8.0 / 1024.0,
            arch.weight_bits() as f64 * 4.0 / 1024.0,
        ));
    }
    s
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

/// One row of Table II.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Row {
    /// Configuration name.
    pub name: String,
    /// Estimated resources.
    pub usage: ResourceUsage,
    /// Test accuracy (None when the caller skipped training).
    pub accuracy: Option<f32>,
    /// Fits the Z7020.
    pub fits_z7020: bool,
    /// Fits the Z7010.
    pub fits_z7010: bool,
}

/// Compute Table II resource rows. Accuracy slots are filled by the caller
/// (training scale is a runtime decision); resource estimates only need the
/// architecture, so untrained networks suffice.
pub fn table2_rows(accuracies: &[Option<f32>; 3]) -> Vec<Table2Row> {
    ArchKind::ALL
        .iter()
        .zip(accuracies)
        .map(|(&kind, &accuracy)| {
            let arch = kind.arch();
            let net = build_bnn(&arch, 0);
            let pipeline = deploy(&net, &arch);
            let usage = estimate(&pipeline, arch.dsp_offload);
            Table2Row {
                name: arch.name.clone(),
                fits_z7020: Z7020.fits(&usage),
                fits_z7010: Z7010.fits(&usage),
                usage,
                accuracy,
            }
        })
        .collect()
}

/// Paper's Table II values, for side-by-side reporting.
pub const PAPER_TABLE2: [(&str, u64, f64, u64, f64); 3] = [
    ("CNV", 26_060, 124.0, 24, 98.10),
    ("n-CNV", 20_425, 10.5, 14, 93.94),
    ("μ-CNV", 11_738, 14.0, 27, 93.78),
];

/// Render Table II with the paper's numbers alongside the model's.
pub fn table2_report(rows: &[Table2Row]) -> String {
    let mut s = String::from(
        "TABLE II: Hardware results (model vs paper)\n\
         config     LUT(model) LUT(paper)  BRAM(m) BRAM(p)  DSP(m) DSP(p)  Acc(m)   Acc(p)\n",
    );
    for (row, paper) in rows.iter().zip(PAPER_TABLE2) {
        s.push_str(&format!(
            "{:<10} {:>10} {:>10} {:>8} {:>7} {:>7} {:>6} {:>7} {:>8}\n",
            row.name,
            row.usage.luts,
            paper.1,
            row.usage.bram18,
            paper.2,
            row.usage.dsps,
            paper.3,
            row.accuracy
                .map(|a| format!("{:.2}", a * 100.0))
                .unwrap_or_else(|| "-".into()),
            paper.4,
        ));
    }
    s.push_str("fits: ");
    for row in rows {
        s.push_str(&format!(
            "{} → Z7020:{} Z7010:{}  ",
            row.name,
            if row.fits_z7020 { "yes" } else { "NO" },
            if row.fits_z7010 { "yes" } else { "no" }
        ));
    }
    s.push('\n');
    s
}

// ---------------------------------------------------------------------------
// Throughput / power claims (Sec. IV-B)
// ---------------------------------------------------------------------------

/// Performance + power report for all three prototypes: the ~6400 fps
/// n-CNV claim and the ~1.6 W idle claim.
pub fn perf_power_report() -> String {
    let mut s = String::from(
        "Design-space exploration: timing & power (100 MHz target clock)\n\
         config     fps(full)   II(cycles)  latency(µs)  idle(W)  gate(W)  crowd(W)\n",
    );
    for kind in ArchKind::ALL {
        let arch = kind.arch();
        let net = build_bnn(&arch, 0);
        let pipeline = deploy(&net, &arch);
        let perf = CLOCK_100MHZ.analyze(&pipeline);
        let usage = estimate(&pipeline, arch.dsp_offload);
        let gate_duty = PowerModel::gate_duty(0.5, perf.latency_us * 1e-6);
        s.push_str(&format!(
            "{:<10} {:>9.0} {:>12} {:>12.1} {:>8.2} {:>8.3} {:>9.2}\n",
            arch.name,
            perf.throughput_fps,
            perf.initiation_interval,
            perf.latency_us,
            DEFAULT_POWER.idle_w,
            DEFAULT_POWER.board_w(&usage, gate_duty),
            DEFAULT_POWER.board_w(&usage, 1.0),
        ));
    }
    s.push_str("paper claims: n-CNV ≈ 6400 fps at full pipeline; ~1.6 W idle on all prototypes\n");
    s
}

// ---------------------------------------------------------------------------
// Sec. IV-A dataset pipeline
// ---------------------------------------------------------------------------

/// Reproduce the dataset-preparation narrative: raw 51/39/5/5 imbalance →
/// balancing by subsampling → augmentation.
pub fn dataset_report(raw_n: usize, seed: u64) -> String {
    let gen = GeneratorConfig::default();
    let raw = Dataset::generate_raw(&gen, raw_n, seed);
    let balanced = raw.balance_by_subsampling(seed + 1);
    let augmented = balanced.augmented(1, seed + 2);
    format!(
        "Dataset pipeline (Sec. IV-A), {raw_n} raw samples @32×32\n\n\
         RAW (MaskedFace-Net distribution):\n{}\n\
         BALANCED (subsample large classes):\n{}\n\
         AUGMENTED (+1 copy: contrast/brightness/noise/flip/rotate):\n{}",
        raw.distribution_table(),
        balanced.distribution_table(),
        augmented.distribution_table(),
    )
}

// ---------------------------------------------------------------------------
// Grad-CAM figures 3–9
// ---------------------------------------------------------------------------

/// One row of a Grad-CAM figure: a pinned subject + class.
pub struct FigureRow {
    /// Row label (left column of the paper's figures).
    pub label: String,
    /// Ground-truth class.
    pub class: MaskClass,
    /// The rendered input.
    pub image: Tensor,
}

fn base_face(rng: &mut StdRng) -> FaceParams {
    let mut f = FaceParams::sample(rng);
    // Neutral defaults; figures override what they probe.
    f.sunglasses = false;
    f.face_paint = None;
    f.headgear = Headgear::None;
    f
}

fn render_row(
    label: &str,
    class: MaskClass,
    face: FaceParams,
    mask: MaskParams,
    size: usize,
    rng: &mut StdRng,
) -> FigureRow {
    let cfg = GeneratorConfig {
        img_size: size,
        supersample: 3,
    };
    let lm = face.landmarks();
    let placed = place_mask(class, &lm, &mask, rng);
    assert_eq!(placed.landmark_coverage(&lm), class.coverage());
    let spec = SampleSpec {
        face,
        mask,
        placed,
        class,
    };
    FigureRow {
        label: label.into(),
        class,
        image: render_sample(&cfg, &spec),
    }
}

/// Build the subjects of Grad-CAM figure `fig` (3–9) at `size`×`size`.
pub fn figure_rows(fig: u8, size: usize, seed: u64) -> (String, Vec<FigureRow>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let std_mask = |rng: &mut StdRng| MaskParams::sample(rng);
    match fig {
        3..=6 => {
            let (class, title) = match fig {
                3 => (MaskClass::CorrectlyMasked, "Fig. 3: correctly-masked class"),
                4 => (MaskClass::NoseExposed, "Fig. 4: nose-exposed class"),
                5 => (
                    MaskClass::NoseMouthExposed,
                    "Fig. 5: nose+mouth-exposed class",
                ),
                _ => (MaskClass::ChinExposed, "Fig. 6: chin-exposed class"),
            };
            let mut rows = Vec::new();
            for (i, age) in [AgeGroup::Infant, AgeGroup::Adult, AgeGroup::Adult]
                .into_iter()
                .enumerate()
            {
                let mut face = base_face(&mut rng);
                face.age = age;
                let m = std_mask(&mut rng);
                rows.push(render_row(
                    &format!("{} #{}", class.short_name(), i + 1),
                    class,
                    face,
                    m,
                    size,
                    &mut rng,
                ));
            }
            (title.into(), rows)
        }
        7 => {
            let mut rows = Vec::new();
            for (label, age) in [
                ("infant", AgeGroup::Infant),
                ("adult", AgeGroup::Adult),
                ("elderly", AgeGroup::Elderly),
            ] {
                let mut face = base_face(&mut rng);
                face.age = age;
                let m = std_mask(&mut rng);
                rows.push(render_row(
                    label,
                    MaskClass::CorrectlyMasked,
                    face,
                    m,
                    size,
                    &mut rng,
                ));
            }
            ("Fig. 7: age generalization (correctly masked)".into(), rows)
        }
        8 => {
            let mut rows = Vec::new();
            // Mask-colored hair and headgear — the Fig. 8 confusers.
            let mut f1 = base_face(&mut rng);
            f1.hair_color = MASK_BLUE;
            let mut f2 = base_face(&mut rng);
            f2.headgear = Headgear::Headscarf;
            f2.headgear_color = MASK_BLUE;
            let mut f3 = base_face(&mut rng);
            f3.headgear = Headgear::Cap;
            f3.headgear_color = Rgb(0.9, 0.2, 0.2);
            let blue_mask = MaskParams {
                color: MASK_BLUE,
                double_mask: None,
                jitter: 0.01,
            };
            for (label, face) in [("blue hair", f1), ("blue scarf", f2), ("red cap", f3)] {
                rows.push(render_row(
                    label,
                    MaskClass::CorrectlyMasked,
                    face,
                    blue_mask.clone(),
                    size,
                    &mut rng,
                ));
            }
            (
                "Fig. 8: hair/headgear generalization (correctly masked)".into(),
                rows,
            )
        }
        9 => {
            let mut rows = Vec::new();
            let mut f1 = base_face(&mut rng);
            let double = MaskParams {
                color: MASK_BLUE,
                double_mask: Some(Rgb(0.2, 0.2, 0.25)),
                jitter: 0.01,
            };
            let mut f2 = base_face(&mut rng);
            f2.face_paint = Some(Rgb(0.9, 0.1, 0.6));
            let mut f3 = base_face(&mut rng);
            f3.sunglasses = true;
            f1.age = AgeGroup::Adult;
            rows.push(render_row(
                "double mask",
                MaskClass::CorrectlyMasked,
                f1,
                double,
                size,
                &mut rng,
            ));
            rows.push(render_row(
                "face paint",
                MaskClass::NoseExposed,
                f2,
                std_mask(&mut rng),
                size,
                &mut rng,
            ));
            rows.push(render_row(
                "sunglasses",
                MaskClass::ChinExposed,
                f3,
                std_mask(&mut rng),
                size,
                &mut rng,
            ));
            (
                "Fig. 9: face manipulation (double mask / paint / sunglasses)".into(),
                rows,
            )
        }
        _ => panic!("Grad-CAM figures are numbered 3–9, got {fig}"),
    }
}

/// Luminance map of a CHW RGB image (for ASCII rendering of the raw input).
pub fn luminance(image: &Tensor) -> Tensor {
    assert_eq!(image.shape().rank(), 3);
    let (h, w) = (image.shape().dim(1), image.shape().dim(2));
    let plane = h * w;
    let px = image.as_slice();
    let data: Vec<f32> = (0..plane)
        .map(|i| 0.299 * px[i] + 0.587 * px[plane + i] + 0.114 * px[2 * plane + i])
        .collect();
    Tensor::from_vec(Shape::d2(h, w), data)
}

/// Run Grad-CAM for one figure across a set of models and render the
/// paper's row layout (label | raw | one heat map per model) as ASCII.
/// `models` supplies `(column title, network, target layer)`.
pub fn gradcam_figure_report(
    fig: u8,
    size: usize,
    seed: u64,
    models: &mut [(&str, &mut Sequential, &str)],
) -> String {
    let (title, rows) = figure_rows(fig, size, seed);
    let mut s = format!("{title}\n");
    for row in &rows {
        s.push_str(&format!(
            "\n[{}] true class: {}\n",
            row.label,
            row.class.full_name()
        ));
        let batch = Tensor::stack(std::slice::from_ref(&row.image));
        let norm = batch.map(|v| 2.0 * v - 1.0);
        let mut blocks: Vec<(String, Vec<String>)> = Vec::new();
        blocks.push((
            "raw".into(),
            bcp_gradcam::render::ascii(&luminance(&row.image))
                .lines()
                .map(String::from)
                .collect(),
        ));
        for (name, net, layer) in models.iter_mut() {
            let maps = gradcam(net, &norm, &[row.class.label()], layer, size);
            let (cy, cx) = heat_centroid(&maps[0].heat);
            blocks.push((
                format!("{name} (centroid {cy:.0},{cx:.0})"),
                bcp_gradcam::render::ascii(&maps[0].heat)
                    .lines()
                    .map(String::from)
                    .collect(),
            ));
        }
        // Print the blocks side by side.
        let header: Vec<String> = blocks
            .iter()
            .map(|(t, _)| format!("{:<width$}", t, width = size + 2))
            .collect();
        s.push_str(&header.join(""));
        s.push('\n');
        for line in 0..size {
            for (_, lines) in &blocks {
                s.push_str(&format!("{:<width$}", lines[line], width = size + 2));
            }
            s.push('\n');
        }
    }
    s
}

/// Write the PPM artifacts for one figure (raw + per-model overlays) into
/// `dir`; returns the file list.
pub fn gradcam_figure_ppms(
    fig: u8,
    size: usize,
    seed: u64,
    models: &mut [(&str, &mut Sequential, &str)],
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let (_, rows) = figure_rows(fig, size, seed);
    let mut written = Vec::new();
    for (r, row) in rows.iter().enumerate() {
        let raw_path = dir.join(format!("fig{fig}_row{r}_raw.ppm"));
        std::fs::write(&raw_path, bcp_gradcam::render::image_ppm(&row.image))?;
        written.push(raw_path);
        let batch = Tensor::stack(std::slice::from_ref(&row.image));
        let norm = batch.map(|v| 2.0 * v - 1.0);
        for (name, net, layer) in models.iter_mut() {
            let maps = gradcam(net, &norm, &[row.class.label()], layer, size);
            let ppm = bcp_gradcam::render::overlay_ppm(&row.image, &maps[0].heat, 0.6);
            let path = dir.join(format!(
                "fig{fig}_row{r}_{}.ppm",
                name.replace(['/', ' '], "_")
            ));
            std::fs::write(&path, ppm)?;
            written.push(path);
        }
    }
    Ok(written)
}

// ---------------------------------------------------------------------------
// Robustness: weight-memory fault injection (extension experiment)
// ---------------------------------------------------------------------------

/// One point of the fault-injection sweep.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Number of flipped weight bits.
    pub faults: usize,
    /// Fraction of the total weight bits flipped.
    pub fault_rate: f64,
    /// Fraction of probe frames whose predicted class changed vs the
    /// fault-free pipeline.
    pub class_change_rate: f64,
}

/// Sweep random weight-bit faults over a deployed network and measure how
/// often classifications change (relative to the clean pipeline, so no
/// training is needed). The BNN redundancy claim predicts a shallow curve
/// at low fault rates.
pub fn robustness_sweep(
    net: &Sequential,
    arch: &Arch,
    fault_counts: &[usize],
    probes: usize,
    seed: u64,
) -> Vec<RobustnessPoint> {
    let clean = deploy(net, arch);
    let total_bits = arch.weight_bits();
    // Probe with in-distribution face images: robustness on real inputs is
    // the quantity of interest (random-noise probes sit at logit ties and
    // overstate fragility).
    let gen = GeneratorConfig {
        img_size: arch.input_size,
        supersample: 2,
    };
    let probe_set = Dataset::generate_balanced(&gen, probes.div_ceil(4), seed ^ 0xFA17);
    let frames: Vec<bcp_finn::data::QuantMap> = (0..probes)
        .map(|i| {
            let img = probe_set.image(i);
            bcp_finn::data::QuantMap::from_unit_floats(
                3,
                arch.input_size,
                arch.input_size,
                img.as_slice(),
            )
        })
        .collect();
    let baseline: Vec<usize> = frames.iter().map(|f| clean.classify(f)).collect();
    fault_counts
        .iter()
        .map(|&faults| {
            let mut faulty = deploy(net, arch);
            bcp_finn::fault::inject_random_faults(&mut faulty, faults, seed + faults as u64);
            let changed = frames
                .iter()
                .zip(&baseline)
                .filter(|(f, &b)| faulty.classify(f) != b)
                .count();
            RobustnessPoint {
                faults,
                fault_rate: faults as f64 / total_bits as f64,
                class_change_rate: changed as f64 / probes as f64,
            }
        })
        .collect()
}

/// Render a robustness sweep as a table.
pub fn robustness_report(arch_name: &str, points: &[RobustnessPoint]) -> String {
    let mut s = format!(
        "Fault-injection robustness ({arch_name}): flipped weight bits vs \
         changed classifications\n{:>10} {:>12} {:>16}\n",
        "faults", "fault rate", "class changes"
    );
    for p in points {
        s.push_str(&format!(
            "{:>10} {:>11.3}% {:>15.1}%\n",
            p.faults,
            p.fault_rate * 100.0,
            p.class_change_rate * 100.0
        ));
    }
    s
}

// ---------------------------------------------------------------------------
// Quantitative attention focus (backing for the Figs. 3–9 narrative)
// ---------------------------------------------------------------------------

/// Aggregate Grad-CAM statistics over a dataset: per-class mean attention
/// and the fraction of attention mass inside the mask-decisive band,
/// compared against the uniform-attention chance level.
pub fn attention_focus_report(net: &mut Sequential, test: &Dataset, target_layer: &str) -> String {
    use bcp_gradcam::stats::{
        mask_band, region_area_fraction, region_fraction, AttentionAccumulator,
    };
    let size = test.img_size();
    let mut accs: Vec<AttentionAccumulator> =
        (0..4).map(|_| AttentionAccumulator::new(size)).collect();
    // Batch per sample (Grad-CAM backward needs per-sample seeds anyway).
    for i in 0..test.len() {
        let image = Tensor::stack(&[test.image(i)]);
        let norm = image.map(|v| 2.0 * v - 1.0);
        let label = test.labels[i];
        let maps = gradcam(net, &norm, &[label], target_layer, size);
        accs[label].add(&maps[0]);
    }
    let band = mask_band(size);
    let chance = region_area_fraction(size, mask_band(size));
    let mut s = format!(
        "Attention focus over {} test images (Grad-CAM at {target_layer})\n\
         mask-band area (chance level): {:.1}%\n\
         {:<26}{:>8}{:>22}\n",
        test.len(),
        chance * 100.0,
        "true class",
        "samples",
        "attention in band"
    );
    for class in MaskClass::ALL {
        let acc = &accs[class.label()];
        let frac = region_fraction(&acc.mean(), &band);
        s.push_str(&format!(
            "{:<26}{:>8}{:>21.1}%\n",
            class.full_name(),
            acc.count(),
            frac * 100.0
        ));
    }
    s
}

// ---------------------------------------------------------------------------
// Weight/input-mode ablation (Sec. II-B design choices)
// ---------------------------------------------------------------------------

/// Train the three binarization variants at a given miniature scale and
/// report test accuracies: plain BNN (the paper's choice), XNOR-Net-style
/// scaled weights (the rejected alternative), and fully-binary input.
pub fn variant_ablation(
    arch: &Arch,
    train_per_class: usize,
    test_per_class: usize,
    epochs: usize,
    seed: u64,
) -> String {
    use crate::model::{build_bnn_with, InputMode, ModelOptions, WeightMode};
    use bcp_nn::optim::Adam;
    use bcp_nn::train::{evaluate, fit, LossKind, TrainConfig};

    let gen = GeneratorConfig {
        img_size: arch.input_size,
        supersample: 2,
    };
    let train = Dataset::generate_balanced(&gen, train_per_class, seed);
    let test = Dataset::generate_balanced(&gen, test_per_class, seed ^ 0x7E57);
    let train_images = train.normalized_images();
    let test_images = test.normalized_images();

    let variants: [(&str, ModelOptions); 3] = [
        (
            "plain BNN (paper)",
            ModelOptions {
                weights: WeightMode::Plain,
                input: InputMode::FixedPoint8,
            },
        ),
        (
            "XNOR-Net scaled α·sign(W)",
            ModelOptions {
                weights: WeightMode::Scaled,
                input: InputMode::FixedPoint8,
            },
        ),
        (
            "binary input sign(2x−1)",
            ModelOptions {
                weights: WeightMode::Plain,
                input: InputMode::Binary,
            },
        ),
    ];
    let mut s = format!(
        "Binarization-variant ablation ({}, {}·4 train / {}·4 test, {} epochs)\n\
         {:<28}{:>10}{:>16}\n",
        arch.name, train_per_class, test_per_class, epochs, "variant", "test acc", "deployable"
    );
    for (label, opts) in variants {
        let mut net = build_bnn_with(arch, seed, opts);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs,
            batch_size: 32,
            shuffle_seed: seed,
            loss: LossKind::CrossEntropy,
            schedule: None,
        };
        fit(
            &mut net,
            &mut opt,
            &train_images,
            &train.labels,
            None,
            &cfg,
            |_| true,
        );
        let acc = evaluate(&mut net, &test_images, &test.labels, 32, None);
        let deployable = opts.weights == WeightMode::Plain && opts.input == InputMode::FixedPoint8;
        s.push_str(&format!(
            "{:<28}{:>9.1}%  {:>20}\n",
            label,
            acc * 100.0,
            if deployable {
                "XNOR pipeline"
            } else {
                "no (training only)"
            }
        ));
    }
    s.push_str(
        "(the paper picks plain BNN + 8-bit input: scaled weights add multipliers\n\
         the XNOR datapath cannot absorb; binary input discards most pixel information)\n",
    );
    s
}

// ---------------------------------------------------------------------------
// Fig. 1 (structural)
// ---------------------------------------------------------------------------

/// The accelerator schematic of Fig. 1 as a textual stage graph.
pub fn fig1_report(kind: ArchKind) -> String {
    let arch = kind.arch();
    let net = build_bnn(&arch, 0);
    deploy(&net, &arch).describe()
}

/// Helper shared by binaries/benches: a network with populated batch-norm
/// statistics (an untrained-but-deployable model).
pub fn untrained_with_stats(kind: ArchKind, seed: u64) -> (Sequential, Arch) {
    let arch = kind.arch();
    let mut net = build_bnn(&arch, seed);
    let x = bcp_tensor::init::uniform(
        Shape::nchw(2, 3, arch.input_size, arch.input_size),
        -1.0,
        1.0,
        seed + 1,
    );
    let _ = net.forward(&x, Mode::Train);
    (net, arch)
}

/// Deterministic pseudo-random test image on the u8 grid (benches).
pub fn random_u8_image(size: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..3 * size * size)
        .map(|_| rng.gen_range(0..=255u32) as f32 / 255.0)
        .collect();
    Tensor::from_vec(Shape::d3(3, size, size), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_all_architectures() {
        let s = table1_report();
        for name in ["CNV", "n-CNV", "μ-CNV"] {
            assert!(s.contains(name));
        }
        assert!(s.contains("×32"));
    }

    #[test]
    fn table2_rows_have_paper_shape() {
        let rows = table2_rows(&[None, None, None]);
        assert_eq!(rows.len(), 3);
        let (cnv, ncnv, ucnv) = (&rows[0], &rows[1], &rows[2]);
        // Ordering claims from Table II.
        assert!(cnv.usage.luts > ncnv.usage.luts, "{cnv:?} vs {ncnv:?}");
        assert!(ncnv.usage.luts > ucnv.usage.luts, "{ncnv:?} vs {ucnv:?}");
        assert!(cnv.usage.bram18 > ncnv.usage.bram18);
        // μ-CNV's DSP offload shows up as the highest DSP count.
        assert!(ucnv.usage.dsps > cnv.usage.dsps);
        // Fit claims: CNV needs the Z7020; μ-CNV fits the Z7010.
        assert!(cnv.fits_z7020 && !cnv.fits_z7010);
        assert!(ucnv.fits_z7010);
        let report = table2_report(&rows);
        assert!(report.contains("26060") || report.contains("26_060") || report.contains("LUT"));
    }

    #[test]
    fn perf_report_hits_throughput_band() {
        let s = perf_power_report();
        assert!(s.contains("n-CNV"));
        // The n-CNV full-pipeline throughput claim: ~6400 fps. Check the
        // actual computed value through the pipeline itself.
        let (net, arch) = untrained_with_stats(ArchKind::NCnv, 0);
        let perf = CLOCK_100MHZ.analyze(&deploy(&net, &arch));
        assert!(
            (4000.0..16000.0).contains(&perf.throughput_fps),
            "n-CNV throughput {} fps outside the paper's order of magnitude",
            perf.throughput_fps
        );
    }

    #[test]
    fn dataset_report_shows_rebalancing() {
        let s = dataset_report(400, 3);
        assert!(s.contains("RAW"));
        assert!(s.contains("BALANCED"));
        assert!(s.contains("AUGMENTED"));
    }

    #[test]
    fn all_gradcam_figures_have_three_rows() {
        for fig in 3..=9u8 {
            let (title, rows) = figure_rows(fig, 32, 1);
            assert!(!title.is_empty());
            assert_eq!(rows.len(), 3, "figure {fig}");
            for row in &rows {
                assert_eq!(row.image.shape().dims(), &[3, 32, 32]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "numbered 3–9")]
    fn figure_bounds_checked() {
        figure_rows(2, 32, 0);
    }

    #[test]
    fn gradcam_report_renders_for_tiny_model() {
        let arch = crate::recipe::tiny_arch();
        let mut net = crate::model::build_bnn(&arch, 3);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 4);
        let _ = net.forward(&x, Mode::Train);
        let mut models: Vec<(&str, &mut Sequential, &str)> = vec![("tiny", &mut net, "conv3")];
        let s = gradcam_figure_report(4, 16, 5, &mut models);
        assert!(s.contains("Fig. 4"));
        assert!(s.contains("tiny"));
        assert!(s.contains("true class: Nose Exposed"));
    }

    #[test]
    fn robustness_sweep_is_monotone_ish_and_bounded() {
        let arch = crate::recipe::tiny_arch();
        let mut net = crate::model::build_bnn(&arch, 5);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
        let _ = net.forward(&x, Mode::Train);
        let points = robustness_sweep(&net, &arch, &[0, 8, 256], 12, 3);
        assert_eq!(points.len(), 3);
        assert_eq!(
            points[0].class_change_rate, 0.0,
            "zero faults must change nothing"
        );
        assert!(points[2].fault_rate > points[1].fault_rate);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.class_change_rate));
        }
        let report = robustness_report(&arch.name, &points);
        assert!(report.contains("fault rate"));
    }

    #[test]
    fn attention_focus_report_renders() {
        let arch = crate::recipe::tiny_arch();
        let mut net = crate::model::build_bnn(&arch, 3);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 4);
        let _ = net.forward(&x, Mode::Train);
        let gen = bcp_dataset::GeneratorConfig {
            img_size: 16,
            supersample: 2,
        };
        let test = Dataset::generate_balanced(&gen, 2, 5);
        let s = attention_focus_report(&mut net, &test, "conv3");
        assert!(s.contains("mask-band area"));
        for class in MaskClass::ALL {
            assert!(s.contains(class.full_name()));
        }
    }

    #[test]
    fn variant_ablation_reports_all_three() {
        let s = variant_ablation(&crate::recipe::tiny_arch(), 10, 6, 2, 4);
        assert!(s.contains("plain BNN"));
        assert!(s.contains("XNOR-Net"));
        assert!(s.contains("binary input"));
        assert!(s.contains("XNOR pipeline"));
    }

    #[test]
    fn fig1_structure_matches_paper() {
        let s = fig1_report(ArchKind::NCnv);
        assert!(s.contains("SWU→MVTU"));
        assert!(s.contains("OR-pool"));
        assert!(s.contains("argmax"));
    }

    #[test]
    fn luminance_weights_sum_to_one() {
        let img = Tensor::ones(Shape::d3(3, 2, 2));
        let l = luminance(&img);
        for &v in l.as_slice() {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }
}
