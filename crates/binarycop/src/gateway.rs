//! BinaryCoP behind the `bcp-gateway` TCP front door.
//!
//! The glue mirrors [`crate::serve`] one level up: where `serve::engine`
//! stands up one micro-batching engine, [`shard_specs`] describes N
//! independent engines — each with its own pool of guarded (self-healing)
//! predictor replicas — for the gateway's consistent-hash router to
//! spread tenants across. The spec's factory clones the deployed
//! predictor, which is what makes shard revival after a chaos kill
//! possible: the golden weights live in the spec, not in the dead engine.

use crate::guard::GuardedReplica;
use crate::predictor::BinaryCoP;
use bcp_gateway::ShardSpec;
use bcp_serve::{canary_frame, RecoveryPolicy, Replica, ServeConfig};
use std::sync::Arc;

/// Build `shards` identical shard specs, each serving `workers` guarded
/// replicas of `predictor`. Unless the config already carries them, the
/// integrity canary defaults to a gradient frame at the architecture's
/// input size and worker recovery to [`RecoveryPolicy::default`] — the
/// same defaults as [`crate::guard::guarded_engine`], so a gateway shard
/// self-heals exactly like a single-process engine does.
pub fn shard_specs(
    predictor: &BinaryCoP,
    shards: usize,
    workers: usize,
    mut cfg: ServeConfig,
) -> Vec<ShardSpec> {
    if cfg.canary.is_none() {
        let s = predictor.arch().input_size;
        cfg.canary = Some(canary_frame(3, s, s));
    }
    if cfg.recovery.is_none() {
        cfg.recovery = Some(RecoveryPolicy::default());
    }
    let template = Arc::new(predictor.clone());
    (0..shards.max(1))
        .map(|_| {
            let template = Arc::clone(&template);
            ShardSpec {
                make: Arc::new(move || {
                    template
                        .replicate(workers.max(1))
                        .into_iter()
                        .map(|p| Box::new(GuardedReplica::new(p)) as Box<dyn Replica>)
                        .collect()
                }),
                cfg: cfg.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_bnn;
    use crate::recipe::tiny_arch;
    use bcp_gateway::{Gateway, GatewayClient, GatewayConfig, Status};
    use bcp_nn::Mode;
    use bcp_tensor::Shape;

    fn predictor() -> BinaryCoP {
        let arch = tiny_arch();
        let mut net = build_bnn(&arch, 5);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
        let _ = net.forward(&x, Mode::Train);
        BinaryCoP::from_trained(&net, &arch)
    }

    #[test]
    fn gateway_answers_match_direct_classification_and_survive_a_kill() {
        let p = predictor();
        let specs = shard_specs(&p, 2, 1, ServeConfig::default());
        let gw = Gateway::start(specs, GatewayConfig::default(), None).unwrap();
        let mut client = GatewayClient::connect(gw.local_addr()).unwrap();
        let s = p.arch().input_size;
        let frames: Vec<_> = (0..6).map(|_| canary_frame(3, s, s)).collect();
        for (i, f) in frames.iter().enumerate() {
            let resp = client.classify(3, i as u64, 2_000, f).unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.class as usize, p.classify(f).label());
        }
        // Kill the tenant's affinity shard: same answers, different shard.
        let affinity = gw.router().preference(3)[0];
        gw.router().shards()[affinity].kill();
        for (i, f) in frames.iter().enumerate() {
            let resp = client.classify(3, 100 + i as u64, 2_000, f).unwrap();
            assert_eq!(resp.status, Status::Ok, "post-kill request {i}");
            assert_eq!(resp.class as usize, p.classify(f).label());
            assert_ne!(resp.shard as usize, affinity);
        }
        gw.shutdown();
    }
}
