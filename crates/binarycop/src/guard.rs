//! Guarded deployment: BinaryCoP replicas that heal themselves.
//!
//! Plugs `bcp-guard` into the predictor and the serving layer. A
//! [`GuardedReplica`] pairs one deployed pipeline with its own
//! [`Scrubber`] (captured from the pipeline at construction, while it is
//! still trusted); [`guarded_engine`] stands up a `bcp-serve` pool of
//! them with a [`RecoveryPolicy`] enabled, completing the loop the paper's
//! robustness experiment only measures passively: an SEU is detected at
//! the canary gate, the worker is quarantined, its scrubber restores the
//! golden weights off the hot path, and the worker re-earns rotation
//! through probation — with zero wrong answers served in between.

use crate::predictor::BinaryCoP;
use bcp_dataset::MaskClass;
use bcp_finn::{GoldenDigest, IntegrityFault, StreamStats};
use bcp_guard::Scrubber;
use bcp_serve::{canary_frame, Engine, RecoveryPolicy, Replica, ServeConfig};
use bcp_tensor::Tensor;

impl BinaryCoP {
    /// Capture the sealed integrity digest of the deployed pipeline: one
    /// CRC-32 per packed weight row and per threshold table. Do this at
    /// deploy time, while the pipeline is trusted.
    pub fn golden_digest(&self) -> GoldenDigest {
        GoldenDigest::capture(self.pipeline())
    }

    /// Check the live pipeline against a digest captured earlier,
    /// returning every localized corruption.
    pub fn verify_integrity(&self, digest: &GoldenDigest) -> Vec<IntegrityFault> {
        digest.verify(self.pipeline())
    }

    /// Build a [`Scrubber`] over this predictor's pipeline (golden
    /// digest and compressed golden copy captured now). Inherits the
    /// predictor's telemetry registry for `guard.scrub.*` metrics, when
    /// attached.
    pub fn scrubber(&self) -> Scrubber {
        let s = Scrubber::new(self.pipeline());
        match self.telemetry() {
            Some(r) => s.with_telemetry(r),
            None => s,
        }
    }
}

/// One serving replica wrapped with its own integrity scrubber. The
/// scrubber's golden state is captured from the replica's pipeline at
/// construction — each worker can therefore repair itself without
/// coordination, exactly like per-board golden memories would.
pub struct GuardedReplica {
    predictor: BinaryCoP,
    scrubber: Scrubber,
}

impl GuardedReplica {
    /// Wrap a (trusted, freshly deployed) predictor.
    pub fn new(predictor: BinaryCoP) -> Self {
        let scrubber = predictor.scrubber();
        GuardedReplica {
            predictor,
            scrubber,
        }
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &BinaryCoP {
        &self.predictor
    }

    /// The replica's scrubber.
    pub fn scrubber(&self) -> &Scrubber {
        &self.scrubber
    }
}

impl Replica for GuardedReplica {
    fn infer_batch(&mut self, frames: &[Tensor]) -> Vec<MaskClass> {
        self.predictor.infer_batch(frames)
    }

    fn infer_batch_streaming(
        &mut self,
        frames: &[Tensor],
    ) -> Option<(Vec<MaskClass>, StreamStats)> {
        self.predictor.infer_batch_streaming(frames)
    }

    fn canary(&self, frame: &Tensor) -> Vec<i64> {
        self.predictor.canary(frame)
    }

    fn inject_faults(&mut self, n: usize, seed: u64) {
        self.predictor.inject_faults(n, seed);
    }

    /// Full scrub sweep against the golden copy. `true` only when the
    /// post-sweep audit comes back clean — the engine then still demands
    /// probation canaries before trusting the worker again.
    fn repair(&mut self) -> bool {
        let report = self.scrubber.full_sweep(self.predictor.pipeline_mut());
        report.faults_repaired == report.faults_detected
            && self.scrubber.audit(self.predictor.pipeline()).is_empty()
    }

    /// Background scrubbing between inference batches.
    fn scrub_tick(&mut self, units: usize) {
        self.scrubber.tick(self.predictor.pipeline_mut(), units);
    }
}

/// Stand up a self-healing serving engine: `workers` guarded replicas,
/// a default canary at the architecture's input size, and (unless the
/// config overrides it) the default [`RecoveryPolicy`]. The predictor's
/// telemetry registry, if attached, receives both the engine's `serve.*`
/// metrics and every replica's `guard.scrub.*` metrics.
pub fn guarded_engine(predictor: &BinaryCoP, workers: usize, mut cfg: ServeConfig) -> Engine {
    if cfg.canary.is_none() {
        let s = predictor.arch().input_size;
        cfg.canary = Some(canary_frame(3, s, s));
    }
    if cfg.recovery.is_none() {
        cfg.recovery = Some(RecoveryPolicy::default());
    }
    let registry = predictor.telemetry().cloned();
    let replicas: Vec<GuardedReplica> = predictor
        .replicate(workers)
        .into_iter()
        .map(GuardedReplica::new)
        .collect();
    Engine::start(replicas, cfg, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_bnn;
    use crate::recipe::tiny_arch;
    use bcp_finn::fault::inject_random_faults;
    use bcp_nn::Mode;
    use bcp_serve::WorkerState;
    use bcp_tensor::Shape;
    use std::time::{Duration, Instant};

    fn predictor() -> BinaryCoP {
        let arch = tiny_arch();
        let mut net = build_bnn(&arch, 5);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
        let _ = net.forward(&x, Mode::Train);
        BinaryCoP::from_trained(&net, &arch)
    }

    #[test]
    fn digest_detects_and_scrubber_undoes_faults() {
        let mut p = predictor();
        let clean = p.clone();
        let digest = p.golden_digest();
        let mut scrubber = p.scrubber();
        assert!(p.verify_integrity(&digest).is_empty());

        inject_random_faults(p.pipeline_mut(), 16, 0xBAD);
        assert!(!p.verify_integrity(&digest).is_empty());

        let report = scrubber.full_sweep(p.pipeline_mut());
        assert_eq!(report.faults_repaired, report.faults_detected);
        assert_eq!(report.bits_flipped, 16);
        assert!(p.verify_integrity(&digest).is_empty());

        let frame = canary_frame(3, 16, 16);
        assert_eq!(Replica::canary(&p, &frame), Replica::canary(&clean, &frame));
    }

    #[test]
    fn guarded_replica_repair_restores_the_canary() {
        let mut r = GuardedReplica::new(predictor());
        let frame = canary_frame(3, 16, 16);
        let golden = r.canary(&frame);
        r.inject_faults(12, 77);
        assert_ne!(r.canary(&frame), golden);
        assert!(r.repair());
        assert_eq!(r.canary(&frame), golden);
    }

    #[test]
    fn guarded_engine_quarantines_repairs_and_reinstates() {
        let p = predictor();
        let cfg = ServeConfig {
            max_batch: 1,
            recovery: Some(RecoveryPolicy {
                probation_passes: 2,
                max_strikes: 3,
                retry_interval: Duration::from_millis(1),
            }),
            ..ServeConfig::default()
        };
        let e = guarded_engine(&p, 1, cfg);
        let frame = canary_frame(3, 16, 16);
        e.inject_faults(0, 8, 42);
        // The corrupted worker is caught at the canary gate…
        assert!(e.classify(&frame).is_err());
        // …and heals itself back into rotation.
        let deadline = Instant::now() + Duration::from_secs(5);
        while e.worker_state(0) != WorkerState::Healthy && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(e.worker_state(0), WorkerState::Healthy, "worker must heal");
        assert_eq!(e.classify(&frame).ok(), Some(p.classify(&frame)));
    }
}
