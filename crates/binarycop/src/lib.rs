//! BinaryCoP — Binary COVID-mask Predictor.
//!
//! The paper's end-to-end system, assembled from the workspace substrates:
//!
//! - [`arch`]: the Table I architectures (CNV, n-CNV, μ-CNV) with their
//!   published PE/SIMD dimensioning, plus the FP32 baseline.
//! - [`model`]: `bcp-nn` network builders for each architecture.
//! - [`recipe`]: training recipes over the synthetic MaskedFace-Net
//!   substitute (balancing → augmentation → minibatch Adam, Sec. IV-A).
//! - [`deploy`]: trained network → FINN pipeline export — weight packing,
//!   batch-norm-to-threshold folding (incl. the first layer's 8-bit input
//!   scale), folding assignment.
//! - [`reference`](mod@reference): an integer-exact reference evaluator, structurally
//!   independent of the pipeline, used to prove the deployment bit-exact.
//! - [`predictor`]: the user-facing classifier with the paper's two
//!   operating modes (single-gate low-power / crowd high-throughput).
//! - [`serve`]: the predictor behind the `bcp-serve` concurrent
//!   micro-batching engine — replica pool, backpressure, fault isolation.
//! - [`experiments`]: regeneration entry points for every table and figure
//!   (Table I, Table II, Fig. 2 confusion matrix, Figs. 3–9 Grad-CAM,
//!   throughput/power claims, the Sec. IV-A dataset pipeline).

#![forbid(unsafe_code)]

pub mod arch;
pub mod deploy;
pub mod eval;
pub mod experiments;
pub mod gateway;
pub mod guard;
pub mod model;
pub mod predictor;
pub mod recipe;
pub mod reference;
pub mod serve;

pub use arch::{Arch, ArchKind};
pub use predictor::BinaryCoP;
