//! Network builders: Table I architectures as `bcp-nn` stacks.
//!
//! Layer order follows the FINN deployment form: conv → batch-norm → sign,
//! with max-pool *after* the sign so pooling happens in the binary domain
//! (where the hardware's OR-pool is exact). Each conv/FC group `i` uses the
//! names `conv{i}` / `fc{i}`, `bn_conv{i}` / `bn_fc{i}`, `sign_conv{i}` /
//! `sign_fc{i}`, `pool{p}` — the deployment exporter walks these by name.

use crate::arch::{Arch, ArchKind, K};
use bcp_nn::activation::{Relu, SignSte};
use bcp_nn::batchnorm::BatchNorm;
use bcp_nn::conv::{BinaryConv2d, Conv2d};
use bcp_nn::flatten::Flatten;
use bcp_nn::linear::{BinaryLinear, Linear};
use bcp_nn::pool::MaxPool2d;
use bcp_nn::Sequential;
use bcp_tensor::Conv2dSpec;

/// Binary-weight flavour (Sec. II-B design choice).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WeightMode {
    /// Plain BNN weights, `sign(W)` — the paper's choice, deployable as
    /// pure XNOR hardware.
    #[default]
    Plain,
    /// XNOR-Net weights, `α·sign(W)` — the rejected alternative; training
    /// ablation only (the FINN exporter refuses it).
    Scaled,
}

/// First-layer input precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InputMode {
    /// 8-bit fixed-point camera pixels into the first conv (FINN's and the
    /// paper's choice).
    #[default]
    FixedPoint8,
    /// Binarize the input pixels too (`sign(2x−1)`): the fully-binary
    /// ablation, cheaper hardware but a large information loss.
    Binary,
}

/// Model-construction options for the ablation studies.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelOptions {
    /// Weight flavour.
    pub weights: WeightMode,
    /// Input precision.
    pub input: InputMode,
}

/// Build the binary (BNN) network for an architecture. `seed` controls all
/// weight initialization.
pub fn build_bnn(arch: &Arch, seed: u64) -> Sequential {
    build_bnn_with(arch, seed, ModelOptions::default())
}

/// Build a BNN with explicit weight/input modes (ablations).
pub fn build_bnn_with(arch: &Arch, seed: u64, opts: ModelOptions) -> Sequential {
    use bcp_nn::scaled::{ScaledBinaryConv2d, ScaledBinaryLinear};
    arch.validate();
    let mut net = Sequential::new(arch.name.clone());
    if opts.input == InputMode::Binary {
        net = net.push(SignSte::new("sign_input"));
    }
    let mut pool_idx = 0usize;
    for (i, conv) in arch.convs.iter().enumerate() {
        let spec = Conv2dSpec::new(conv.c_in, conv.c_out, K, 0);
        net = match opts.weights {
            WeightMode::Plain => net.push(BinaryConv2d::new(
                format!("conv{}", i + 1),
                spec,
                seed + i as u64,
            )),
            WeightMode::Scaled => net.push(ScaledBinaryConv2d::new(
                format!("conv{}", i + 1),
                spec,
                seed + i as u64,
            )),
        };
        net = net
            .push(BatchNorm::new(format!("bn_conv{}", i + 1), conv.c_out))
            .push(SignSte::new(format!("sign_conv{}", i + 1)));
        if conv.pool_after {
            pool_idx += 1;
            net = net.push(MaxPool2d::two_by_two(format!("pool{pool_idx}")));
        }
    }
    net = net.push(Flatten::new("flatten"));
    let n_fc = arch.fcs.len();
    for (i, fc) in arch.fcs.iter().enumerate() {
        net = match opts.weights {
            WeightMode::Plain => net.push(BinaryLinear::new(
                format!("fc{}", i + 1),
                fc.f_in,
                fc.f_out,
                seed + 100 + i as u64,
            )),
            WeightMode::Scaled => net.push(ScaledBinaryLinear::new(
                format!("fc{}", i + 1),
                fc.f_in,
                fc.f_out,
                seed + 100 + i as u64,
            )),
        };
        if i + 1 < n_fc {
            net = net
                .push(BatchNorm::new(format!("bn_fc{}", i + 1), fc.f_out))
                .push(SignSte::new(format!("sign_fc{}", i + 1)));
        }
    }
    net
}

/// Build the FP32 baseline of the Grad-CAM comparison: the same topology
/// with float convolutions and ReLU activations.
pub fn build_fp32(arch: &Arch, seed: u64) -> Sequential {
    arch.validate();
    let mut net = Sequential::new(format!("{}-FP32", arch.name));
    let mut pool_idx = 0usize;
    for (i, conv) in arch.convs.iter().enumerate() {
        let spec = Conv2dSpec::new(conv.c_in, conv.c_out, K, 0);
        net = net
            .push(Conv2d::new(format!("conv{}", i + 1), spec, seed + i as u64))
            .push(BatchNorm::new(format!("bn_conv{}", i + 1), conv.c_out))
            .push(Relu::new(format!("relu_conv{}", i + 1)));
        if conv.pool_after {
            pool_idx += 1;
            net = net.push(MaxPool2d::two_by_two(format!("pool{pool_idx}")));
        }
    }
    net = net.push(Flatten::new("flatten"));
    let n_fc = arch.fcs.len();
    for (i, fc) in arch.fcs.iter().enumerate() {
        net = net.push(Linear::new(
            format!("fc{}", i + 1),
            fc.f_in,
            fc.f_out,
            i + 1 == n_fc, // bias only on the logits layer
            seed + 100 + i as u64,
        ));
        if i + 1 < n_fc {
            net = net
                .push(BatchNorm::new(format!("bn_fc{}", i + 1), fc.f_out))
                .push(Relu::new(format!("relu_fc{}", i + 1)));
        }
    }
    net
}

/// Convenience: build the BNN for a prototype kind.
pub fn build_kind(kind: ArchKind, seed: u64) -> Sequential {
    build_bnn(&kind.arch(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_nn::Mode;
    use bcp_tensor::init::uniform;
    use bcp_tensor::Shape;

    #[test]
    fn cnv_forward_shape() {
        let mut net = build_kind(ArchKind::Cnv, 0);
        let x = uniform(Shape::nchw(2, 3, 32, 32), -1.0, 1.0, 1);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 4]);
    }

    #[test]
    fn ncnv_and_micro_forward_shape() {
        for kind in [ArchKind::NCnv, ArchKind::MicroCnv] {
            let mut net = build_kind(kind, 0);
            let x = uniform(Shape::nchw(1, 3, 32, 32), -1.0, 1.0, 2);
            let y = net.forward(&x, Mode::Eval);
            assert_eq!(y.shape().dims(), &[1, 4], "{kind:?}");
        }
    }

    #[test]
    fn fp32_forward_shape() {
        let mut net = build_fp32(&ArchKind::NCnv.arch(), 3);
        let x = uniform(Shape::nchw(1, 3, 32, 32), -1.0, 1.0, 4);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 4]);
    }

    #[test]
    fn bnn_param_count_matches_arch_weights() {
        // Trainable params = latent conv/FC weights + batch-norm affines.
        let arch = ArchKind::NCnv.arch();
        let mut net = build_bnn(&arch, 0);
        let weights = arch.weight_bits() as usize;
        let bn: usize = arch.convs.iter().map(|c| 2 * c.c_out).sum::<usize>()
            + arch
                .fcs
                .iter()
                .take(arch.fcs.len() - 1)
                .map(|f| 2 * f.f_out)
                .sum::<usize>();
        assert_eq!(net.param_count(), weights + bn);
    }

    #[test]
    fn networks_are_trainable_backward_runs() {
        let mut net = build_kind(ArchKind::MicroCnv, 1);
        let x = uniform(Shape::nchw(2, 3, 32, 32), -1.0, 1.0, 5);
        let y = net.forward(&x, Mode::Train);
        let dy = bcp_tensor::Tensor::ones(y.shape().clone());
        let dx = net.backward(&dy);
        assert_eq!(dx.shape(), x.shape());
        let mut nonzero = 0usize;
        net.visit_params(&mut |p| {
            nonzero += p.grad.as_slice().iter().filter(|v| **v != 0.0).count()
        });
        assert!(nonzero > 0, "gradients must reach the parameters");
    }

    #[test]
    fn conv2_2_layer_exists_for_gradcam() {
        // The paper's Grad-CAM target: the 4th conv (conv2_2 → our conv4)
        // output has 5×5 spatial extent after its pool... conv4 output is
        // 10×10 pre-pool; the 5×5 map the paper cites is post-pool. Both
        // are reachable by name.
        let mut net = build_kind(ArchKind::Cnv, 0);
        assert!(net.index_of("conv4").is_some());
        assert!(net.index_of("pool2").is_some());
        let x = uniform(Shape::nchw(1, 3, 32, 32), -1.0, 1.0, 6);
        let outs = net.forward_collect(&x, Mode::Eval);
        let pool2 = net.index_of("pool2").unwrap();
        assert_eq!(outs[pool2].shape().dims(), &[1, 128, 5, 5]);
    }

    #[test]
    fn scaled_variant_builds_and_runs() {
        let arch = crate::recipe::tiny_arch();
        let mut net = build_bnn_with(
            &arch,
            1,
            ModelOptions {
                weights: WeightMode::Scaled,
                input: InputMode::FixedPoint8,
            },
        );
        let x = uniform(Shape::nchw(1, 3, 16, 16), -1.0, 1.0, 2);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[1, 4]);
        // Scaled conv accumulators are generally non-integer (α scaling).
        let outs = net.forward_collect(&x, Mode::Eval);
        let conv1 = net.index_of("conv1").unwrap();
        let any_noninteger = outs[conv1]
            .as_slice()
            .iter()
            .any(|&v| (v - v.round()).abs() > 1e-4);
        assert!(any_noninteger, "scaled weights should break integrality");
    }

    #[test]
    fn binary_input_variant_binarizes_pixels() {
        let arch = crate::recipe::tiny_arch();
        let mut net = build_bnn_with(
            &arch,
            1,
            ModelOptions {
                weights: WeightMode::Plain,
                input: InputMode::Binary,
            },
        );
        assert_eq!(net.index_of("sign_input"), Some(0));
        let x = uniform(Shape::nchw(1, 3, 16, 16), -1.0, 1.0, 3);
        let outs = net.forward_collect(&x, Mode::Eval);
        for &v in outs[0].as_slice() {
            assert!(v == 1.0 || v == -1.0);
        }
        // With binary inputs AND binary weights, conv1 accumulators are
        // integers — the fully-binary datapath.
        let conv1 = net.index_of("conv1").unwrap();
        for &v in outs[conv1].as_slice() {
            assert_eq!(v, v.round());
        }
    }

    #[test]
    fn sign_layers_emit_binary_maps() {
        let mut net = build_kind(ArchKind::NCnv, 2);
        let x = uniform(Shape::nchw(1, 3, 32, 32), 0.0, 1.0, 7);
        let outs = net.forward_collect(&x, Mode::Eval);
        let idx = net.index_of("sign_conv3").unwrap();
        for &v in outs[idx].as_slice() {
            assert!(v == 1.0 || v == -1.0);
        }
    }
}
