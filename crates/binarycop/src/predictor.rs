//! The user-facing BinaryCoP predictor.
//!
//! Wraps a deployed pipeline with the paper's two operating modes:
//!
//! - **Single gate** (Sec. IV-B): classification triggered per subject,
//!   board power ≈ the 1.6 W idle floor;
//! - **Crowd statistics**: the pipeline kept full for maximum throughput
//!   (~6400 fps on n-CNV), batching sub-images of a crowd scene.

use crate::arch::Arch;
use crate::deploy::deploy;
use bcp_dataset::MaskClass;
use bcp_finn::data::QuantMap;
use bcp_finn::device::ResourceUsage;
use bcp_finn::perf::{ClockModel, PerfReport, CLOCK_100MHZ};
use bcp_finn::power::{PowerModel, DEFAULT_POWER};
use bcp_finn::resource::estimate;
use bcp_finn::stream::run_streaming_blocked;
use bcp_finn::Pipeline;
use bcp_nn::Sequential;
use bcp_telemetry::Registry;
use bcp_tensor::Tensor;
use std::time::Instant;

/// Deployment operating mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OperatingMode {
    /// Event-triggered classification at an entrance; `subjects_per_s`
    /// people pass the gate per second.
    SingleGate {
        /// Gate traffic.
        subjects_per_s: f64,
    },
    /// Free-running pipeline over crowd sub-images.
    CrowdStatistics,
}

/// Frames per channel token in crowd-mode streaming: two register blocks
/// of the blocked GEMM ([`bcp_bitpack::BLOCK_LANES`] = 4), so the dense
/// stages' weight rows are streamed once per 8 frames while token
/// granularity stays fine enough to keep all stage threads busy.
pub const STREAM_BLOCK_FRAMES: usize = 8;

/// A deployed BinaryCoP classifier.
///
/// Cloning deep-copies the pipeline (each clone owns independent weight
/// and threshold memory) but *shares* the telemetry registry, so replicas
/// serving concurrently aggregate into one set of metrics.
#[derive(Clone)]
pub struct BinaryCoP {
    arch: Arch,
    pipeline: Pipeline,
    clock: ClockModel,
    power: PowerModel,
    usage: ResourceUsage,
    telemetry: Option<Registry>,
}

/// Argmax over a logits vector, first index on ties — the one decision
/// rule shared by every classification path.
fn argmax_class(logits: &[i64]) -> MaskClass {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits.get(best).copied().unwrap_or(i64::MIN) {
            best = i;
        }
    }
    MaskClass::from_label(best)
}

/// Counter-name suffix for a predicted class (`predict.class.<slug>`).
fn class_slug(c: MaskClass) -> &'static str {
    match c {
        MaskClass::CorrectlyMasked => "correct",
        MaskClass::NoseExposed => "nose_exposed",
        MaskClass::NoseMouthExposed => "nose_mouth_exposed",
        MaskClass::ChinExposed => "chin_exposed",
    }
}

impl BinaryCoP {
    /// Deploy a trained BNN. The architecture's graph is shape-checked by
    /// [`deploy`]; use [`BinaryCoP::from_trained_checked`] to also gate on
    /// the full static analysis (folding, cycle budget, device fit).
    pub fn from_trained(net: &Sequential, arch: &Arch) -> Self {
        let pipeline = deploy(net, arch);
        let usage = estimate(&pipeline, arch.dsp_offload);
        BinaryCoP {
            arch: arch.clone(),
            pipeline,
            clock: CLOCK_100MHZ,
            power: DEFAULT_POWER,
            usage,
            telemetry: None,
        }
    }

    /// Deploy with the complete `bcp-check` verdict as a gate: the static
    /// verifier runs on the architecture *before* any pipeline stage is
    /// constructed, and an error-carrying report refuses deployment.
    pub fn from_trained_checked(
        net: &Sequential,
        arch: &Arch,
        cfg: &bcp_check::CheckConfig,
    ) -> Result<Self, bcp_check::Report> {
        let report = bcp_check::check_arch(&arch.spec(), cfg);
        if !report.is_clean() {
            return Err(report);
        }
        Ok(Self::from_trained(net, arch))
    }

    /// Run the full static analysis suite (folding legality, cycle budget,
    /// rate balance, resource fit, threshold soundness) over the deployed
    /// pipeline — the post-deployment twin of `bcp check`.
    pub fn check(&self, cfg: &bcp_check::CheckConfig) -> bcp_check::Report {
        bcp_check::check_pipeline(&self.pipeline, self.arch.dsp_offload, cfg)
    }

    /// Attach a telemetry registry. Afterwards every [`classify`]
    /// (BinaryCoP::classify) records its wall time into the
    /// `predict.latency_ns` histogram and bumps `predict.frames` plus a
    /// `predict.class.<slug>` counter; [`classify_batch`]
    /// (BinaryCoP::classify_batch) additionally exports the streaming
    /// pipeline's per-stage busy/idle/blocked metrics.
    pub fn with_telemetry(mut self, registry: Registry) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref()
    }

    fn record_prediction(&self, class: MaskClass, latency: Option<std::time::Duration>) {
        if let Some(t) = &self.telemetry {
            t.counter("predict.frames").inc();
            t.counter(&format!("predict.class.{}", class_slug(class)))
                .inc();
            if let Some(d) = latency {
                t.histogram("predict.latency_ns").record_duration(d);
            }
        }
    }

    /// The underlying pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable access to the pipeline — the hook for fault injection
    /// (`bcp_finn::fault`) and other chaos experiments on a deployed
    /// predictor.
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// `n` independent replicas of this predictor, one per serving worker.
    /// Each replica owns its weight/threshold memory (a fault injected
    /// into one cannot corrupt another); all share this predictor's
    /// telemetry registry, if any.
    pub fn replicate(&self, n: usize) -> Vec<BinaryCoP> {
        (0..n).map(|_| self.clone()).collect()
    }

    /// The architecture deployed.
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// Convert a CHW float image on the 8-bit grid `[0, 1]` (the dataset /
    /// camera format) into the pipeline's quantized input.
    pub fn quantize(&self, image: &Tensor) -> QuantMap {
        assert_eq!(image.shape().rank(), 3, "expects a CHW image");
        let (c, h, w) = (
            image.shape().dim(0),
            image.shape().dim(1),
            image.shape().dim(2),
        );
        assert_eq!(
            (c, h, w),
            (3, self.arch.input_size, self.arch.input_size),
            "image must be 3×{0}×{0}",
            self.arch.input_size
        );
        QuantMap::from_unit_floats(c, h, w, image.as_slice())
    }

    /// Classify one frame (gate mode).
    pub fn classify(&self, image: &Tensor) -> MaskClass {
        let t0 = Instant::now();
        let class = MaskClass::from_label(self.pipeline.classify(&self.quantize(image)));
        self.record_prediction(class, Some(t0.elapsed()));
        class
    }

    /// Classify a batch through the threaded streaming pipeline (crowd
    /// mode); results in input order.
    pub fn classify_batch(&self, images: &[Tensor]) -> Vec<MaskClass> {
        self.classify_batch_with_stats(images).0
    }

    /// Classify a micro-batch in the calling thread through the
    /// register-blocked multi-frame kernel ([`Pipeline::forward_batch`]):
    /// no stage threads are spawned, and the dense layers stream each
    /// weight row once for the whole group. This is the serving engine's
    /// dispatch path for small batches, where thread spin-up would cost
    /// more than it overlaps. Results are bit-identical to
    /// [`classify`](BinaryCoP::classify) per frame, in input order.
    pub fn classify_block(&self, images: &[Tensor]) -> Vec<MaskClass> {
        let t0 = Instant::now();
        let frames: Vec<QuantMap> = images.iter().map(|i| self.quantize(i)).collect();
        let logits = self.pipeline.forward_batch(&frames);
        let classes: Vec<MaskClass> = logits.iter().map(|l| argmax_class(l)).collect();
        if self.telemetry.is_some() {
            // Amortized per-frame latency, as in crowd mode: the frames
            // share one pass over the weight memory.
            let per_frame = t0
                .elapsed()
                .checked_div(classes.len().max(1) as u32)
                .unwrap_or_default();
            for &class in &classes {
                self.record_prediction(class, Some(per_frame));
            }
        }
        classes
    }

    /// [`classify_batch`](BinaryCoP::classify_batch), also returning the
    /// streaming run's [`StreamStats`](bcp_finn::StreamStats) — feed them
    /// to [`bcp_finn::correlation_report`] to compare measured stage time
    /// against the analytical cycle model.
    pub fn classify_batch_with_stats(
        &self,
        images: &[Tensor],
    ) -> (Vec<MaskClass>, bcp_finn::StreamStats) {
        let frames: Vec<QuantMap> = images.iter().map(|i| self.quantize(i)).collect();
        let t0 = Instant::now();
        let (logits, stats) =
            run_streaming_blocked(&self.pipeline, &frames, 4, STREAM_BLOCK_FRAMES);
        let wall = t0.elapsed();
        let classes: Vec<MaskClass> = logits.iter().map(|l| argmax_class(l)).collect();
        if let Some(t) = &self.telemetry {
            stats.record_into(t);
            // Per-frame latency in crowd mode is the amortized pipeline
            // time, not a per-frame wall measurement (frames overlap).
            let per_frame = wall
                .checked_div(classes.len().max(1) as u32)
                .unwrap_or_default();
            for &class in &classes {
                self.record_prediction(class, Some(per_frame));
            }
        }
        (classes, stats)
    }

    /// Timing report at the 100 MHz target clock.
    pub fn perf(&self) -> PerfReport {
        self.clock.analyze(&self.pipeline)
    }

    /// Estimated resource usage (Table II's LUT/BRAM/DSP columns).
    pub fn resources(&self) -> ResourceUsage {
        self.usage
    }

    /// Modelled board power in watts for an operating mode.
    pub fn board_power_w(&self, mode: OperatingMode) -> f64 {
        match mode {
            OperatingMode::SingleGate { subjects_per_s } => {
                let latency_s = self.perf().latency_us * 1e-6;
                let duty = PowerModel::gate_duty(subjects_per_s, latency_s);
                self.power.board_w(&self.usage, duty)
            }
            OperatingMode::CrowdStatistics => self.power.board_w(&self.usage, 1.0),
        }
    }

    /// Classify an approach sequence (several frames of one subject) by
    /// majority vote over per-frame decisions — the gate-mode temporal
    /// smoothing that absorbs single-frame sensor noise. Ties break toward
    /// the class seen in the *later* frames (the subject is closest there).
    pub fn classify_sequence(&self, frames: &[Tensor]) -> MaskClass {
        assert!(!frames.is_empty(), "a sequence needs at least one frame");
        let mut votes = [0usize; 4];
        let mut last_of: [usize; 4] = [0; 4];
        for (t, frame) in frames.iter().enumerate() {
            let c = self.classify(frame).label();
            votes[c] += 1;
            last_of[c] = t;
        }
        let mut best = 0usize;
        for c in 1..4 {
            if votes[c] > votes[best] || (votes[c] == votes[best] && last_of[c] > last_of[best]) {
                best = c;
            }
        }
        MaskClass::from_label(best)
    }

    /// Persist the deployed accelerator (weights, thresholds, foldings) as
    /// a JSON pipeline image — the software analogue of the bitstream.
    pub fn save_image(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let img = bcp_finn::image::PipelineImage::capture(&self.pipeline);
        let json = serde_json::to_string(&img).expect("pipeline image serializes");
        std::fs::write(path, json)
    }

    /// Restore a predictor from a pipeline image saved by
    /// [`BinaryCoP::save_image`]. The architecture metadata is needed to
    /// re-derive the resource/power models.
    pub fn load_image(path: impl AsRef<std::path::Path>, arch: &Arch) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let img: bcp_finn::image::PipelineImage = serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let pipeline = img
            .restore()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let usage = estimate(&pipeline, arch.dsp_offload);
        Ok(BinaryCoP {
            arch: arch.clone(),
            pipeline,
            clock: CLOCK_100MHZ,
            power: DEFAULT_POWER,
            usage,
            telemetry: None,
        })
    }

    /// One-paragraph deployment summary.
    pub fn summary(&self) -> String {
        let perf = self.perf();
        format!(
            "{}: {:.0} fps (II {} cycles), latency {:.1} µs, \
             {} LUTs / {} BRAM18 / {} DSPs, gate power {:.2} W, crowd power {:.2} W\n",
            self.arch.name,
            perf.throughput_fps,
            perf.initiation_interval,
            perf.latency_us,
            self.usage.luts,
            self.usage.bram18,
            self.usage.dsps,
            self.board_power_w(OperatingMode::SingleGate {
                subjects_per_s: 0.5
            }),
            self.board_power_w(OperatingMode::CrowdStatistics),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_bnn;
    use crate::recipe::tiny_arch;
    use bcp_dataset::{Dataset, GeneratorConfig};
    use bcp_nn::Mode;
    use bcp_tensor::Shape;

    fn predictor() -> BinaryCoP {
        let arch = tiny_arch();
        let mut net = build_bnn(&arch, 5);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
        let _ = net.forward(&x, Mode::Train);
        BinaryCoP::from_trained(&net, &arch)
    }

    fn images(n: usize) -> Vec<Tensor> {
        let gen = GeneratorConfig {
            img_size: 16,
            supersample: 2,
        };
        let ds = Dataset::generate_balanced(&gen, n.div_ceil(4), 9);
        (0..n).map(|i| ds.image(i)).collect()
    }

    #[test]
    fn checked_constructor_gates_on_the_static_verifier() {
        let arch = tiny_arch();
        let mut net = build_bnn(&arch, 5);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
        let _ = net.forward(&x, Mode::Train);
        let cfg = bcp_check::CheckConfig::default();
        // The consistent tiny arch deploys...
        let p = BinaryCoP::from_trained_checked(&net, &arch, &cfg).unwrap();
        // ...and its built pipeline passes the post-deployment analyses.
        assert!(p.check(&cfg).is_clean(), "{}", p.check(&cfg).render_text());
        // A shape mutation is refused before any stage is constructed.
        let mut broken = arch.clone();
        broken.pe[1] = 3; // 3 does not divide conv2's 8 output channels
        let Err(report) = BinaryCoP::from_trained_checked(&net, &broken, &cfg) else {
            panic!("broken folding must be refused");
        };
        assert!(report.has_code(bcp_check::Code::PeNotDivisor));
    }

    #[test]
    fn classify_returns_a_mask_class() {
        let p = predictor();
        let img = &images(1)[0];
        let c = p.classify(img);
        assert!(MaskClass::ALL.contains(&c));
    }

    #[test]
    fn batch_matches_single_frame() {
        let p = predictor();
        let imgs = images(8);
        let batch = p.classify_batch(&imgs);
        let single: Vec<MaskClass> = imgs.iter().map(|i| p.classify(i)).collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn block_classify_matches_single_frame() {
        // The in-thread blocked path (the serving engine's dispatch) must
        // agree bit-for-bit with per-frame classify, including at batch
        // sizes off the register-block grid.
        let p = predictor();
        for n in [0usize, 1, 5, 8, 11] {
            let imgs = images(n.max(1))[..n].to_vec();
            let block = p.classify_block(&imgs);
            let single: Vec<MaskClass> = imgs.iter().map(|i| p.classify(i)).collect();
            assert_eq!(block, single, "n={n}");
        }
    }

    #[test]
    fn batch_spanning_many_stream_blocks_matches_single_frame() {
        // More frames than STREAM_BLOCK_FRAMES with a ragged tail: the
        // blocked streaming path must stay bit-exact across token joints.
        let p = predictor();
        let imgs = images(super::STREAM_BLOCK_FRAMES * 2 + 3);
        let batch = p.classify_batch(&imgs);
        let single: Vec<MaskClass> = imgs.iter().map(|i| p.classify(i)).collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn gate_power_is_near_idle_crowd_is_higher() {
        let p = predictor();
        let gate = p.board_power_w(OperatingMode::SingleGate {
            subjects_per_s: 0.5,
        });
        let crowd = p.board_power_w(OperatingMode::CrowdStatistics);
        assert!(
            (gate - 1.6).abs() < 0.05,
            "gate power {gate} should be ≈1.6 W"
        );
        assert!(crowd > gate, "crowd {crowd} must exceed gate {gate}");
    }

    #[test]
    fn perf_and_summary_are_consistent() {
        let p = predictor();
        let perf = p.perf();
        assert!(perf.throughput_fps > 0.0);
        assert!(perf.latency_cycles >= perf.initiation_interval);
        let s = p.summary();
        assert!(s.contains("tiny-CNV"));
        assert!(s.contains("fps"));
    }

    #[test]
    fn sequence_vote_matches_majority() {
        let p = predictor();
        let seq = bcp_dataset::video::gate_sequence(
            &GeneratorConfig {
                img_size: 16,
                supersample: 2,
            },
            MaskClass::NoseExposed,
            5,
            3,
        );
        let voted = p.classify_sequence(&seq.frames);
        // The vote must equal the plurality of per-frame decisions.
        let mut counts = [0usize; 4];
        for f in &seq.frames {
            counts[p.classify(f).label()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[voted.label()], max);
    }

    #[test]
    fn sequence_vote_breaks_ties_toward_later_frames() {
        // Construct a synthetic 2-frame tie by feeding two frames the
        // (untrained) predictor classifies differently; the later frame's
        // class must win. Find such a pair among generated images.
        let p = predictor();
        let imgs = images(16);
        let mut pair = None;
        for i in 0..imgs.len() {
            for j in 0..imgs.len() {
                if p.classify(&imgs[i]) != p.classify(&imgs[j]) {
                    pair = Some((i, j));
                    break;
                }
            }
            if pair.is_some() {
                break;
            }
        }
        if let Some((i, j)) = pair {
            let voted = p.classify_sequence(&[imgs[i].clone(), imgs[j].clone()]);
            assert_eq!(voted, p.classify(&imgs[j]), "later frame must win ties");
        }
    }

    #[test]
    fn pipeline_image_roundtrip_classifies_identically() {
        let p = predictor();
        let dir = std::env::temp_dir().join("bcp_predictor_image_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.bcp.json");
        p.save_image(&path).unwrap();
        let restored = BinaryCoP::load_image(&path, p.arch()).unwrap();
        for img in images(6) {
            assert_eq!(p.classify(&img), restored.classify(&img));
        }
        assert_eq!(p.resources(), restored.resources());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "3×16×16")]
    fn wrong_image_size_rejected() {
        let p = predictor();
        p.classify(&Tensor::zeros(Shape::d3(3, 32, 32)));
    }

    #[test]
    fn telemetry_counts_every_prediction() {
        let registry = Registry::with_event_buffer();
        let p = predictor().with_telemetry(registry.clone());
        let imgs = images(12);
        let single: Vec<MaskClass> = imgs[..4].iter().map(|i| p.classify(i)).collect();
        let batch = p.classify_batch(&imgs[4..]);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["predict.frames"], 12);
        let per_class: u64 = MaskClass::ALL
            .iter()
            .map(|c| {
                snap.counters
                    .get(&format!("predict.class.{}", class_slug(*c)))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(per_class, 12);
        // Per-class counts must match the actual decisions.
        for c in MaskClass::ALL {
            let expected = single
                .iter()
                .chain(batch.iter())
                .filter(|&&x| x == c)
                .count() as u64;
            let got = snap
                .counters
                .get(&format!("predict.class.{}", class_slug(c)))
                .copied()
                .unwrap_or(0);
            assert_eq!(got, expected, "count for {c:?}");
        }
        assert_eq!(snap.histograms["predict.latency_ns"].count, 12);
        // Batch mode also exports the streaming pipeline's stage metrics.
        assert_eq!(snap.counters["stream.frames"], 8);
    }

    #[test]
    fn telemetry_artifacts_parse_with_latency_percentiles_and_class_counts() {
        // The ISSUE acceptance check: a telemetry run must leave valid
        // JSONL + a summary.json carrying p50/p95/p99 and per-class counts.
        use serde::Value;
        let registry = Registry::with_event_buffer();
        let p = predictor().with_telemetry(registry.clone());
        for img in images(8) {
            p.classify(&img);
        }
        registry.mark("run.done", serde::Map::new());
        let dir =
            std::env::temp_dir().join(format!("bcp-predictor-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let summary_path = registry.write_artifacts(&dir).unwrap();
        let summary: Value =
            serde_json::from_str(&std::fs::read_to_string(&summary_path).unwrap()).unwrap();
        let lat = &summary["histograms"]["predict.latency_ns"];
        assert_eq!(lat["count"].as_u64(), Some(8));
        for q in ["p50", "p95", "p99"] {
            assert!(lat[q].as_u64().unwrap_or(0) > 0, "{q} missing or zero");
        }
        let counters = summary["counters"].as_object().expect("counters object");
        let class_total: u64 = counters
            .iter()
            .filter(|(k, _)| k.starts_with("predict.class."))
            .map(|(_, v)| v.as_u64().unwrap())
            .sum();
        assert_eq!(class_total, 8);
        // Every event line is standalone JSON with the envelope fields.
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(!events.is_empty());
        for line in events.lines() {
            let e: Value = serde_json::from_str(line).unwrap();
            assert!(!e["ts_us"].is_null() && !e["kind"].is_null() && !e["name"].is_null());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
