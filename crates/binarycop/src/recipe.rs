//! Training recipes: dataset pipeline + optimization schedule (Sec. IV-A).

use crate::arch::{Arch, ArchKind, ConvLayer, FcLayer};
use crate::eval::confusion_matrix;
use crate::model::{build_bnn, build_fp32};
use bcp_dataset::{Dataset, GeneratorConfig};
use bcp_nn::metrics::ConfusionMatrix;
use bcp_nn::optim::{Adam, StepDecay};
use bcp_nn::train::{fit_instrumented, EpochStats, LossKind, TrainConfig};
use bcp_nn::Sequential;

/// A complete training configuration.
#[derive(Clone, Debug)]
pub struct Recipe {
    /// Architecture to train.
    pub arch: Arch,
    /// Train the FP32 baseline instead of the BNN.
    pub fp32: bool,
    /// Balanced samples per class before augmentation.
    pub train_per_class: usize,
    /// Augmented copies appended per training sample.
    pub augment_copies: usize,
    /// Balanced test samples per class (generated with a disjoint seed).
    pub test_per_class: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Master seed (weights, dataset, shuffling).
    pub seed: u64,
}

impl Recipe {
    /// Milliseconds-scale recipe for unit tests: a miniature architecture
    /// on 16×16 inputs.
    pub fn test_scale() -> Recipe {
        // Baselined against the vendored StdRng stream: small batches (more
        // optimizer steps on so few samples) and seed 13 give the miniature
        // BNN a comfortable margin over 4-class chance. Re-sweep seeds if
        // the init/data RNG ever changes.
        Recipe {
            arch: tiny_arch(),
            fp32: false,
            train_per_class: 24,
            augment_copies: 0,
            test_per_class: 12,
            epochs: 8,
            batch_size: 8,
            lr: 0.02,
            seed: 13,
        }
    }

    /// Seconds-to-minutes recipe for examples and benches: the real
    /// architectures on modest synthetic sets.
    pub fn quick(kind: ArchKind) -> Recipe {
        Recipe {
            arch: kind.arch(),
            fp32: false,
            train_per_class: 150,
            augment_copies: 1,
            test_per_class: 50,
            epochs: 8,
            batch_size: 50,
            lr: 0.003,
            seed: 42,
        }
    }

    /// The paper's scale (Sec. IV-A): ~110K train+val, 28K test, up to 300
    /// epochs. Only sensible on a large machine with hours of budget.
    pub fn paper_scale(kind: ArchKind) -> Recipe {
        Recipe {
            arch: kind.arch(),
            fp32: false,
            train_per_class: 13_750, // ×4 classes ×(1+1 augmented) = 110K
            augment_copies: 1,
            test_per_class: 7_000, // 28K test
            epochs: 300,
            batch_size: 128,
            lr: 0.002,
            seed: 42,
        }
    }

    /// Switch to the FP32 baseline.
    pub fn as_fp32(mut self) -> Recipe {
        self.fp32 = true;
        self
    }

    /// Generator config for this recipe's input size.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            img_size: self.arch.input_size,
            supersample: 3,
        }
    }
}

/// A miniature-but-complete architecture used by fast tests: two conv
/// groups, 16×16 input.
pub fn tiny_arch() -> Arch {
    Arch {
        name: "tiny-CNV".into(),
        input_size: 16,
        convs: vec![
            ConvLayer {
                c_in: 3,
                c_out: 8,
                pool_after: false,
            },
            ConvLayer {
                c_in: 8,
                c_out: 8,
                pool_after: true,
            },
            ConvLayer {
                c_in: 8,
                c_out: 16,
                pool_after: false,
            },
        ],
        fcs: vec![
            FcLayer {
                f_in: 16 * 4 * 4,
                f_out: 32,
            },
            FcLayer { f_in: 32, f_out: 4 },
        ],
        pe: vec![4, 4, 4, 1, 1],
        simd: vec![3, 8, 8, 8, 1],
        dsp_offload: false,
    }
}

/// Outcome of a training run.
pub struct TrainedModel {
    /// The trained network (BNN or FP32 depending on the recipe).
    pub net: Sequential,
    /// The architecture trained.
    pub arch: Arch,
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Accuracy on the held-out balanced test set.
    pub test_accuracy: f32,
    /// Fig. 2-style confusion matrix on the test set.
    pub confusion: ConfusionMatrix,
    /// The test set itself (examples reuse it for Grad-CAM input picking).
    pub test_set: Dataset,
}

/// Execute a recipe end to end: generate → balance (generation is already
/// balanced) → augment → train → evaluate.
pub fn run(recipe: &Recipe, log: impl FnMut(&EpochStats)) -> TrainedModel {
    run_instrumented(recipe, None, log)
}

/// [`run`] with an optional telemetry registry threaded through to
/// [`bcp_nn::train::fit_instrumented`]: per-epoch `train.epoch.*` gauges,
/// `train.{epochs,samples}` counters, a `train.epoch_ns` histogram and
/// (with an event sink) one `train.epoch` mark event per epoch.
pub fn run_instrumented(
    recipe: &Recipe,
    telemetry: Option<&bcp_telemetry::Registry>,
    mut log: impl FnMut(&EpochStats),
) -> TrainedModel {
    let gen = recipe.generator();
    let train = Dataset::generate_balanced(&gen, recipe.train_per_class, recipe.seed)
        .augmented(recipe.augment_copies, recipe.seed ^ 0xAAAA);
    let test = Dataset::generate_balanced(&gen, recipe.test_per_class, recipe.seed ^ 0x7E57);

    let mut net = if recipe.fp32 {
        build_fp32(&recipe.arch, recipe.seed)
    } else {
        build_bnn(&recipe.arch, recipe.seed)
    };
    let mut opt = Adam::new(recipe.lr);
    let cfg = TrainConfig {
        epochs: recipe.epochs,
        batch_size: recipe.batch_size,
        shuffle_seed: recipe.seed,
        loss: LossKind::CrossEntropy,
        schedule: Some(StepDecay {
            base_lr: recipe.lr,
            factor: 0.5,
            every: (recipe.epochs / 3).max(1),
        }),
    };
    let train_images = train.normalized_images();
    let history = fit_instrumented(
        &mut net,
        &mut opt,
        &train_images,
        &train.labels,
        None,
        &cfg,
        telemetry,
        |s| {
            log(s);
            true
        },
    );

    let (test_accuracy, confusion) = confusion_matrix(&mut net, &test, recipe.batch_size);
    TrainedModel {
        net,
        arch: recipe.arch.clone(),
        history,
        test_accuracy,
        confusion,
        test_set: test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scale_recipe_learns_the_task() {
        // The end-to-end claim in miniature: a BNN trained on the synthetic
        // masked-face data beats chance by a wide margin within seconds.
        let model = run(&Recipe::test_scale(), |_| {});
        assert_eq!(model.confusion.classes(), 4);
        assert!(
            model.test_accuracy > 0.5,
            "4-class accuracy {} should be well above the 0.25 chance level",
            model.test_accuracy
        );
        let first = model.history.first().unwrap().loss;
        let last = model.history.last().unwrap().loss;
        assert!(last < first, "loss should decrease ({first} → {last})");
    }

    #[test]
    fn fp32_variant_trains_too() {
        let recipe = Recipe {
            epochs: 4,
            ..Recipe::test_scale()
        }
        .as_fp32();
        let model = run(&recipe, |_| {});
        assert!(
            model.test_accuracy > 0.4,
            "fp32 accuracy {}",
            model.test_accuracy
        );
        assert!(model.net.name().contains("FP32"));
    }

    #[test]
    fn runs_are_reproducible() {
        let r = Recipe {
            epochs: 2,
            train_per_class: 8,
            test_per_class: 4,
            ..Recipe::test_scale()
        };
        let a = run(&r, |_| {});
        let b = run(&r, |_| {});
        assert_eq!(a.test_accuracy, b.test_accuracy);
        assert_eq!(
            a.history.last().unwrap().loss,
            b.history.last().unwrap().loss
        );
    }

    #[test]
    fn tiny_arch_is_consistent() {
        tiny_arch().validate();
        // 16 → 14 → 12 → pool 6 → 4; flat = 16·4·4.
        let (outs, flat) = tiny_arch().spatial_plan();
        assert_eq!(outs, vec![14, 12, 4]);
        assert_eq!(flat, 256);
    }
}
