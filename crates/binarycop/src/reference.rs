//! Integer-exact reference evaluator.
//!
//! A second, structurally independent implementation of the deployed
//! network: dense `i8` weights, plain nested loops, no bit packing, no SWU,
//! no folding. Its only shared code with the pipeline is the threshold
//! derivation (itself property-tested against the f64 batch-norm + sign
//! semantics). Exact agreement between this evaluator and
//! [`crate::deploy::deploy`]'s pipeline therefore validates the packing,
//! window gathering, OR-pooling and stage plumbing bit for bit.

use crate::arch::{Arch, K};
use crate::deploy::{thresholds_from_bn, FIRST_LAYER_SCALE};
use bcp_bitpack::ThresholdUnit;
use bcp_finn::data::QuantMap;
use bcp_nn::conv::BinaryConv2d;
use bcp_nn::linear::BinaryLinear;
use bcp_nn::Sequential;

struct ConvRef {
    c_in: usize,
    c_out: usize,
    pool_after: bool,
    /// Dense ±1 weights, (c_out, c_in, ky, kx) row-major.
    weights: Vec<i8>,
    thresholds: ThresholdUnit,
}

struct FcRef {
    f_in: usize,
    f_out: usize,
    /// Dense ±1 weights, (f_out, f_in) row-major.
    weights: Vec<i8>,
    /// `None` for the logits layer.
    thresholds: Option<ThresholdUnit>,
}

/// The evaluator.
pub struct IntegerReference {
    input_size: usize,
    convs: Vec<ConvRef>,
    fcs: Vec<FcRef>,
}

fn signs_to_i8(values: &[f32]) -> Vec<i8> {
    values
        .iter()
        .map(|&v| if v >= 0.0 { 1i8 } else { -1 })
        .collect()
}

impl IntegerReference {
    /// Extract the deployed form of a trained network.
    pub fn from_network(net: &Sequential, arch: &Arch) -> Self {
        arch.validate();
        let convs = arch
            .convs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let name = format!("conv{}", i + 1);
                let idx = net.index_of(&name).expect("conv layer present");
                let layer = net.layer_as::<BinaryConv2d>(idx).expect("BinaryConv2d");
                let scale = if i == 0 { FIRST_LAYER_SCALE } else { 1.0 };
                ConvRef {
                    c_in: c.c_in,
                    c_out: c.c_out,
                    pool_after: c.pool_after,
                    weights: signs_to_i8(layer.binary_weight().as_slice()),
                    thresholds: thresholds_from_bn(net, &format!("bn_conv{}", i + 1), scale),
                }
            })
            .collect();
        let n_fc = arch.fcs.len();
        let fcs = arch
            .fcs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let name = format!("fc{}", i + 1);
                let idx = net.index_of(&name).expect("fc layer present");
                let layer = net.layer_as::<BinaryLinear>(idx).expect("BinaryLinear");
                FcRef {
                    f_in: f.f_in,
                    f_out: f.f_out,
                    weights: signs_to_i8(layer.binary_weight().as_slice()),
                    thresholds: (i + 1 < n_fc)
                        .then(|| thresholds_from_bn(net, &format!("bn_fc{}", i + 1), 1.0)),
                }
            })
            .collect();
        IntegerReference {
            input_size: arch.input_size,
            convs,
            fcs,
        }
    }

    /// Evaluate one quantized frame to integer logits.
    pub fn forward(&self, q: &QuantMap) -> Vec<i64> {
        assert_eq!(
            (q.c, q.h, q.w),
            (self.convs[0].c_in, self.input_size, self.input_size),
            "input dims mismatch"
        );

        // First conv on integer pixels.
        let first = &self.convs[0];
        let mut hw = self.input_size - (K - 1);
        let mut bits = vec![false; first.c_out * hw * hw];
        for co in 0..first.c_out {
            for oy in 0..hw {
                for ox in 0..hw {
                    let mut acc = 0i64;
                    for ci in 0..first.c_in {
                        for ky in 0..K {
                            for kx in 0..K {
                                let w = first.weights[((co * first.c_in + ci) * K + ky) * K + kx];
                                acc += w as i64 * q.get(ci, oy + ky, ox + kx) as i64;
                            }
                        }
                    }
                    bits[(co * hw + oy) * hw + ox] = first.thresholds.apply(co, acc);
                }
            }
        }
        if first.pool_after {
            bits = or_pool_bools(&bits, first.c_out, hw);
            hw /= 2;
        }

        // Hidden binary convs.
        for conv in &self.convs[1..] {
            let out_hw = hw - (K - 1);
            let mut out = vec![false; conv.c_out * out_hw * out_hw];
            for co in 0..conv.c_out {
                for oy in 0..out_hw {
                    for ox in 0..out_hw {
                        let mut acc = 0i64;
                        for ci in 0..conv.c_in {
                            for ky in 0..K {
                                for kx in 0..K {
                                    let w = conv.weights[((co * conv.c_in + ci) * K + ky) * K + kx];
                                    let b = bits[(ci * hw + oy + ky) * hw + ox + kx];
                                    acc += w as i64 * if b { 1 } else { -1 };
                                }
                            }
                        }
                        out[(co * out_hw + oy) * out_hw + ox] = conv.thresholds.apply(co, acc);
                    }
                }
            }
            bits = out;
            hw = out_hw;
            if conv.pool_after {
                bits = or_pool_bools(&bits, conv.c_out, hw);
                hw /= 2;
            }
        }

        // Dense head on the flattened (CHW-order) bits.
        let mut features = bits;
        for fc in &self.fcs {
            assert_eq!(features.len(), fc.f_in, "flatten mismatch");
            let mut accs = vec![0i64; fc.f_out];
            for (o, acc) in accs.iter_mut().enumerate() {
                for (i, &b) in features.iter().enumerate() {
                    let w = fc.weights[o * fc.f_in + i];
                    *acc += w as i64 * if b { 1 } else { -1 };
                }
            }
            match &fc.thresholds {
                Some(t) => {
                    features = accs
                        .iter()
                        .enumerate()
                        .map(|(c, &a)| t.apply(c, a))
                        .collect();
                }
                None => return accs,
            }
        }
        unreachable!("last FC must be the logits layer");
    }

    /// Argmax classification (first index on ties, like the pipeline).
    pub fn classify(&self, q: &QuantMap) -> usize {
        let logits = self.forward(q);
        let mut best = 0usize;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best
    }
}

fn or_pool_bools(bits: &[bool], c: usize, hw: usize) -> Vec<bool> {
    let out_hw = hw / 2;
    let mut out = vec![false; c * out_hw * out_hw];
    for ch in 0..c {
        for oy in 0..out_hw {
            for ox in 0..out_hw {
                let mut any = false;
                for ky in 0..2 {
                    for kx in 0..2 {
                        any |= bits[(ch * hw + oy * 2 + ky) * hw + ox * 2 + kx];
                    }
                }
                out[(ch * out_hw + oy) * out_hw + ox] = any;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchKind;
    use crate::deploy::deploy;
    use crate::model::build_bnn;
    use bcp_nn::Mode;
    use bcp_tensor::Shape;

    fn quant_image(seed: u64) -> QuantMap {
        let px: Vec<f32> = (0..3 * 32 * 32)
            .map(|i| {
                let q = ((i as u64 + 1)
                    .wrapping_mul(seed | 1)
                    .wrapping_mul(0x9E3779B9)
                    >> 20)
                    % 256;
                q as f32 / 255.0
            })
            .collect();
        QuantMap::from_unit_floats(3, 32, 32, &px)
    }

    /// THE bit-exactness invariant: the packed/folded/streamed pipeline and
    /// this dense-loop evaluator agree on every logit, for every
    /// architecture, multiple random initializations and inputs.
    #[test]
    fn pipeline_is_bit_exact_against_reference() {
        for kind in ArchKind::ALL {
            let arch = kind.arch();
            for seed in [1u64, 42] {
                let mut net = build_bnn(&arch, seed);
                // Populate batch-norm running stats with a train pass.
                let x = bcp_tensor::init::uniform(Shape::nchw(4, 3, 32, 32), -1.0, 1.0, seed + 100);
                let _ = net.forward(&x, Mode::Train);
                let pipeline = deploy(&net, &arch);
                let reference = IntegerReference::from_network(&net, &arch);
                for img_seed in 0..4u64 {
                    let q = quant_image(img_seed * 31 + seed);
                    assert_eq!(
                        pipeline.forward(&q),
                        reference.forward(&q),
                        "{kind:?} seed {seed} image {img_seed}: logits diverge"
                    );
                }
            }
        }
    }

    #[test]
    fn streaming_is_bit_exact_against_reference() {
        let arch = ArchKind::MicroCnv.arch();
        let mut net = build_bnn(&arch, 9);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 32, 32), -1.0, 1.0, 10);
        let _ = net.forward(&x, Mode::Train);
        let pipeline = deploy(&net, &arch);
        let reference = IntegerReference::from_network(&net, &arch);
        let frames: Vec<QuantMap> = (0..6).map(|s| quant_image(s + 1)).collect();
        let (streamed, _) = bcp_finn::stream::run_streaming(&pipeline, &frames, 2);
        for (f, got) in frames.iter().zip(&streamed) {
            assert_eq!(got, &reference.forward(f));
        }
    }

    #[test]
    fn classify_is_argmax_first_on_ties() {
        let arch = ArchKind::MicroCnv.arch();
        let mut net = build_bnn(&arch, 3);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 32, 32), -1.0, 1.0, 4);
        let _ = net.forward(&x, Mode::Train);
        let reference = IntegerReference::from_network(&net, &arch);
        let q = quant_image(5);
        let logits = reference.forward(&q);
        let c = reference.classify(&q);
        assert!(logits.iter().all(|&v| v <= logits[c]));
    }
}
