//! BinaryCoP behind the `bcp-serve` micro-batching engine.
//!
//! The paper's deployment (Sec. I, IV-B) is continuous: entrance cameras
//! stream frames at an edge accelerator. This module is the glue between
//! that accelerator model and the generic serving layer — it implements
//! [`Replica`] for [`BinaryCoP`] (each worker owns an independent deployed
//! pipeline) and provides [`engine`] to stand up a pool of replicas with a
//! sensible integrity canary.
//!
//! The streaming fast path routes large micro-batches through the
//! threaded FINN dataflow (`classify_batch_with_stats`), so serving under
//! load also produces the per-stage [`StreamStats`](bcp_finn::StreamStats)
//! that `bcp_finn::correlation_report` compares against the analytical
//! cycle model — measured occupancy under a real concurrent workload,
//! not just in a microbenchmark.

use crate::predictor::BinaryCoP;
use bcp_dataset::MaskClass;
use bcp_finn::fault::inject_random_faults;
use bcp_finn::StreamStats;
use bcp_serve::{canary_frame, Engine, Replica, ServeConfig};
use bcp_tensor::Tensor;

impl Replica for BinaryCoP {
    /// Micro-batch dispatch: one in-thread pass through the
    /// register-blocked multi-frame kernel, so a batch of B frames streams
    /// each dense weight row once instead of B times. Bit-identical to
    /// per-frame [`BinaryCoP::classify`].
    fn infer_batch(&mut self, frames: &[Tensor]) -> Vec<MaskClass> {
        self.classify_block(frames)
    }

    fn infer_batch_streaming(
        &mut self,
        frames: &[Tensor],
    ) -> Option<(Vec<MaskClass>, StreamStats)> {
        Some(self.classify_batch_with_stats(frames))
    }

    /// Raw output logits for `frame` — bit-exact on a healthy pipeline, and
    /// perturbed with high probability by any weight-memory fault (a BNN
    /// bit flip is a full sign change).
    fn canary(&self, frame: &Tensor) -> Vec<i64> {
        self.pipeline().forward(&self.quantize(frame))
    }

    fn inject_faults(&mut self, n: usize, seed: u64) {
        inject_random_faults(self.pipeline_mut(), n, seed);
    }
}

/// Stand up a serving engine over `workers` independent replicas of
/// `predictor`. Unless the config already carries one, the integrity
/// canary defaults to a deterministic gradient frame at the architecture's
/// input size; the predictor's telemetry registry (if attached) receives
/// the engine's `serve.*` metrics.
pub fn engine(predictor: &BinaryCoP, workers: usize, mut cfg: ServeConfig) -> Engine {
    if cfg.canary.is_none() {
        let s = predictor.arch().input_size;
        cfg.canary = Some(canary_frame(3, s, s));
    }
    let registry = predictor.telemetry().cloned();
    Engine::start(predictor.replicate(workers), cfg, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_bnn;
    use crate::recipe::tiny_arch;
    use bcp_dataset::{Dataset, GeneratorConfig};
    use bcp_nn::Mode;
    use bcp_tensor::Shape;

    fn predictor() -> BinaryCoP {
        let arch = tiny_arch();
        let mut net = build_bnn(&arch, 5);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
        let _ = net.forward(&x, Mode::Train);
        BinaryCoP::from_trained(&net, &arch)
    }

    fn images(n: usize) -> Vec<Tensor> {
        let gen = GeneratorConfig {
            img_size: 16,
            supersample: 2,
        };
        let ds = Dataset::generate_balanced(&gen, n.div_ceil(4), 9);
        (0..n).map(|i| ds.image(i)).collect()
    }

    #[test]
    fn served_results_match_direct_classification() {
        let p = predictor();
        let e = engine(&p, 2, ServeConfig::default());
        for img in images(8) {
            assert_eq!(e.classify(&img), Ok(p.classify(&img)));
        }
    }

    #[test]
    fn replica_canary_is_deterministic_and_fault_sensitive() {
        let p = predictor();
        let frame = canary_frame(3, 16, 16);
        let golden = Replica::canary(&p, &frame);
        let mut replicas = p.replicate(2);
        assert_eq!(Replica::canary(&replicas[0], &frame), golden);
        assert_eq!(Replica::canary(&replicas[1], &frame), golden);
        // Faulting one replica leaves its sibling (and the original) clean.
        replicas[0].inject_faults(8, 123);
        assert_ne!(Replica::canary(&replicas[0], &frame), golden);
        assert_eq!(Replica::canary(&replicas[1], &frame), golden);
        assert_eq!(Replica::canary(&p, &frame), golden);
    }

    #[test]
    fn streaming_path_accumulates_stream_stats() {
        let p = predictor();
        let e = engine(
            &p,
            1,
            ServeConfig {
                streaming_min_batch: Some(2),
                max_batch: 8,
                ..ServeConfig::default()
            },
        );
        let imgs = images(8);
        let tickets: Vec<_> = imgs.iter().map(|i| e.submit(i).unwrap()).collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        e.shutdown();
        let stats = e.stream_stats().expect("batches of ≥2 must stream");
        assert!(stats.frames >= 2, "streamed at least one real batch");
    }
}
