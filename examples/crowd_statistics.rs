//! Crowd-statistics deployment scenario (Sec. IV-B, high-performance mode).
//!
//! "This high-performance can be used to split large crowd images and
//! classify them at a high-rate to detect uncovered faces in a scene."
//! This example builds a synthetic crowd scene as a grid of faces, splits
//! it into 32×32 tiles, and pushes all tiles through the *threaded*
//! streaming pipeline at once — the software analogue of keeping the
//! accelerator's pipeline full.
//!
//! ```sh
//! cargo run --release --example crowd_statistics
//! ```

use binarycop::arch::ArchKind;
use binarycop::predictor::BinaryCoP;
use binarycop::recipe::{run, Recipe};
use bcp_dataset::scene::generate_crowd_scene;
use bcp_dataset::{GeneratorConfig, MaskClass};

fn main() {
    let recipe = Recipe {
        train_per_class: 60,
        augment_copies: 0,
        test_per_class: 20,
        epochs: 6,
        ..Recipe::quick(ArchKind::NCnv)
    };
    println!("training n-CNV for crowd statistics …");
    let model = run(&recipe, |_| {});
    println!("test accuracy {:.1}%\n", model.test_accuracy * 100.0);
    let predictor = BinaryCoP::from_trained(&model.net, &model.arch);

    // A real "crowd image": an 8×8 grid of faces composed into one 256×256
    // frame, then split back into the 32×32 tiles the accelerator consumes.
    let gen = GeneratorConfig { img_size: 32, supersample: 3 };
    let scene = generate_crowd_scene(&gen, 8, 0xC20D);
    let tiles = scene.tiles();
    let crowd_labels = scene.labels.clone();
    println!(
        "crowd scene: one {}×{} frame split into {} tiles of 32×32",
        scene.grid * scene.tile,
        scene.grid * scene.tile,
        tiles.len()
    );

    // Classify the whole scene through the threaded streaming pipeline.
    let t0 = std::time::Instant::now();
    let decisions = predictor.classify_batch(&tiles);
    let wall = t0.elapsed().as_secs_f64();

    let mut counts = [0usize; 4];
    for d in &decisions {
        counts[d.label()] += 1;
    }
    println!("\nscene statistics:");
    for class in MaskClass::ALL {
        println!("  {:<24} {:>3}", class.full_name(), counts[class.label()]);
    }
    let non_compliant: usize = counts[1] + counts[2] + counts[3];
    println!(
        "  → {non_compliant}/{} faces not correctly masked",
        tiles.len()
    );

    // Accuracy against the scene's ground truth.
    let correct = decisions
        .iter()
        .zip(&crowd_labels)
        .filter(|(d, &l)| d.label() == l)
        .count();
    println!("  tile accuracy vs ground truth: {correct}/{}", tiles.len());

    // Throughput: simulator wall-clock (software) vs the 100 MHz cycle
    // model (what the FPGA would do).
    let perf = predictor.perf();
    let modeled = perf.batch_seconds(tiles.len(), &bcp_finn::perf::CLOCK_100MHZ);
    println!(
        "\nthroughput: software simulation {:.1} tiles/s; modeled FPGA {:.0} fps \
         (scene in {:.2} ms, paper claims ~6400 fps on n-CNV)",
        tiles.len() as f64 / wall,
        perf.throughput_fps,
        modeled * 1e3
    );
}
