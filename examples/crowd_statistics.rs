//! Crowd-statistics deployment scenario (Sec. IV-B, high-performance mode).
//!
//! "This high-performance can be used to split large crowd images and
//! classify them at a high-rate to detect uncovered faces in a scene."
//! This example builds a synthetic crowd scene as a grid of faces, splits
//! it into 32×32 tiles, and pushes all tiles through the *threaded*
//! streaming pipeline at once — the software analogue of keeping the
//! accelerator's pipeline full.
//!
//! ```sh
//! cargo run --release --example crowd_statistics
//! ```

use bcp_dataset::scene::generate_crowd_scene;
use bcp_dataset::{GeneratorConfig, MaskClass};
use bcp_telemetry::Registry;
use binarycop::arch::ArchKind;
use binarycop::predictor::BinaryCoP;
use binarycop::recipe::{run_instrumented, Recipe};

fn main() {
    let telemetry = Registry::new();
    let recipe = Recipe {
        train_per_class: 60,
        augment_copies: 0,
        test_per_class: 20,
        epochs: 6,
        ..Recipe::quick(ArchKind::NCnv)
    };
    println!("training n-CNV for crowd statistics …");
    let model = run_instrumented(&recipe, Some(&telemetry), |_| {});
    println!("test accuracy {:.1}%\n", model.test_accuracy * 100.0);
    let predictor =
        BinaryCoP::from_trained(&model.net, &model.arch).with_telemetry(telemetry.clone());

    // A real "crowd image": an 8×8 grid of faces composed into one 256×256
    // frame, then split back into the 32×32 tiles the accelerator consumes.
    let gen = GeneratorConfig {
        img_size: 32,
        supersample: 3,
    };
    let scene = generate_crowd_scene(&gen, 8, 0xC20D);
    let tiles = scene.tiles();
    let crowd_labels = scene.labels.clone();
    println!(
        "crowd scene: one {}×{} frame split into {} tiles of 32×32",
        scene.grid * scene.tile,
        scene.grid * scene.tile,
        tiles.len()
    );

    // Classify the whole scene through the threaded streaming pipeline.
    let t0 = std::time::Instant::now();
    let (decisions, stream_stats) = predictor.classify_batch_with_stats(&tiles);
    let wall = t0.elapsed().as_secs_f64();

    let mut counts = [0usize; 4];
    for d in &decisions {
        counts[d.label()] += 1;
    }
    println!("\nscene statistics:");
    for class in MaskClass::ALL {
        println!("  {:<24} {:>3}", class.full_name(), counts[class.label()]);
    }
    let non_compliant: usize = counts[1] + counts[2] + counts[3];
    println!(
        "  → {non_compliant}/{} faces not correctly masked",
        tiles.len()
    );

    // Accuracy against the scene's ground truth.
    let correct = decisions
        .iter()
        .zip(&crowd_labels)
        .filter(|(d, &l)| d.label() == l)
        .count();
    println!("  tile accuracy vs ground truth: {correct}/{}", tiles.len());

    // Throughput: simulator wall-clock (software) vs the 100 MHz cycle
    // model (what the FPGA would do).
    let perf = predictor.perf();
    let modeled = perf.batch_seconds(tiles.len(), &bcp_finn::perf::CLOCK_100MHZ);
    println!(
        "\nthroughput: software simulation {:.1} tiles/s; modeled FPGA {:.0} fps \
         (scene in {:.2} ms, paper claims ~6400 fps on n-CNV)",
        tiles.len() as f64 / wall,
        perf.throughput_fps,
        modeled * 1e3
    );

    // Does the software pipeline behave like the cycle model predicts?
    // Compare each stage's share of measured busy time against its share
    // of modeled cycles.
    let report = bcp_finn::correlation_report(predictor.pipeline(), &stream_stats);
    println!("\n{}", report.render_text());

    // Full meter dump: training dynamics, per-stage stream metrics and the
    // per-tile prediction counters, all from one registry.
    println!("{}", telemetry.snapshot().render_text());
}
