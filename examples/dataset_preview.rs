//! Preview the synthetic MaskedFace-Net substitute (Sec. IV-A).
//!
//! Renders one ASCII sample per wear class, then reproduces the dataset
//! preparation narrative: raw 51/39/5/5 % imbalance → balancing by
//! subsampling → augmentation.
//!
//! ```sh
//! cargo run --release --example dataset_preview
//! ```

use bcp_dataset::generator::{generate_sample, GeneratorConfig};
use bcp_dataset::MaskClass;
use bcp_gradcam::render::ascii;
use binarycop::experiments::{dataset_report, luminance};

fn main() {
    let cfg = GeneratorConfig::default();
    println!("one sample per class (32×32, luminance ASCII):\n");
    let mut blocks: Vec<(String, Vec<String>)> = Vec::new();
    for (i, class) in MaskClass::ALL.into_iter().enumerate() {
        let (img, spec) = generate_sample(&cfg, class, 40 + i as u64);
        let art = ascii(&luminance(&img));
        blocks.push((
            format!("{} ({:?})", class.short_name(), spec.face.age),
            art.lines().map(String::from).collect(),
        ));
    }
    let width = 34;
    for (title, _) in &blocks {
        print!("{title:<width$}");
    }
    println!();
    for row in 0..32 {
        for (_, lines) in &blocks {
            print!("{:<width$}", lines[row]);
        }
        println!();
    }

    println!("\n{}", dataset_report(4_000, 11));
    println!(
        "(The paper: 133,783 MaskedFace-Net images, 51/39/5/5 %, balanced to\n\
         110K train+val / 28K test at 32×32 with the same augmentation set.)"
    );
}
