//! Design-space exploration (Sec. III-B / IV-B), no training required.
//!
//! Sweeps the LUT budget and lets the greedy allocator dimension every
//! MVTU's PE/SIMD for matched throughput, tracing out the
//! resources-vs-throughput frontier for each prototype; then compares the
//! allocator's choice against the paper's hand-tuned Table I vectors.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use bcp_finn::dse::{allocate, allocate_for_target};
use bcp_finn::perf::CLOCK_100MHZ;
use binarycop::arch::ArchKind;

fn main() {
    println!("{}", binarycop::experiments::table1_report());

    for kind in ArchKind::ALL {
        let arch = kind.arch();
        let layers = arch.layer_dims();
        println!("=== {} frontier (greedy DSE) ===", arch.name);
        println!(
            "{:>12} {:>12} {:>12} {:>10}",
            "LUT budget", "MVTU LUTs", "II cycles", "fps@100MHz"
        );
        for budget in [4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0] {
            let r = allocate(&layers, budget);
            println!(
                "{:>12.0} {:>12.0} {:>12} {:>10.0}",
                budget,
                r.luts,
                r.initiation_interval,
                CLOCK_100MHZ.hz / r.initiation_interval as f64
            );
        }

        // The paper's hand dimensioning, for comparison.
        let paper_ii = layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.cycles(arch.folding(i)))
            .max()
            .unwrap();
        let paper_luts: f64 = layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.lut_cost(arch.folding(i)))
            .sum();
        println!(
            "{:>12} {:>12.0} {:>12} {:>10.0}   ← Table I hand dimensioning",
            "paper",
            paper_luts,
            paper_ii,
            CLOCK_100MHZ.hz / paper_ii as f64
        );

        // Inverse problem: what does a target frame rate cost?
        println!("  inverse DSE (cheapest folding for a target fps):");
        for target_fps in [1000u64, 6400, 20000] {
            let target_ii = (CLOCK_100MHZ.hz / target_fps as f64) as u64;
            match allocate_for_target(&layers, target_ii.max(1)) {
                Some(r) => println!(
                    "    {:>6} fps → II {:>6} cycles at {:>8.0} MVTU LUTs",
                    target_fps, r.initiation_interval, r.luts
                ),
                None => println!("    {target_fps:>6} fps → unreachable for {}", arch.name),
            }
        }

        // Show the allocator's per-layer choice at the paper's budget.
        let r = allocate(&layers, paper_luts);
        println!("  per-layer folding at the paper's LUT point (DSE vs Table I):");
        for (i, (l, f)) in layers.iter().zip(&r.foldings).enumerate() {
            let p = arch.folding(i);
            println!(
                "    {:<8} DSE: PE={:<3} SIMD={:<3} ({} cyc)   paper: PE={:<3} SIMD={:<3} ({} cyc)",
                l.name,
                f.pe,
                f.simd,
                l.cycles(*f),
                p.pe,
                p.simd,
                l.cycles(p)
            );
        }
        println!();
    }
}
