//! Single-gate deployment scenario (Sec. IV-B, low-power mode).
//!
//! Trains a reduced n-CNV, deploys it, then simulates a work day at a
//! building entrance: subjects arrive sporadically, each triggering one
//! classification. Reports per-class gate decisions, latency and the
//! near-idle power draw that motivates the paper's 1.6 W claim.
//!
//! ```sh
//! cargo run --release --example gate_monitor
//! ```

use bcp_dataset::{Dataset, GeneratorConfig, MaskClass};
use bcp_telemetry::Registry;
use binarycop::arch::ArchKind;
use binarycop::predictor::{BinaryCoP, OperatingMode};
use binarycop::recipe::{run_instrumented, Recipe};

fn main() {
    let telemetry = Registry::new();
    let recipe = Recipe {
        train_per_class: 60,
        augment_copies: 0,
        test_per_class: 20,
        epochs: 6,
        ..Recipe::quick(ArchKind::NCnv)
    };
    println!("training n-CNV for the gate …");
    let model = run_instrumented(&recipe, Some(&telemetry), |s| {
        println!("  epoch {:>2}: loss {:.4}", s.epoch, s.loss);
    });
    println!("test accuracy {:.1}%\n", model.test_accuracy * 100.0);

    let predictor =
        BinaryCoP::from_trained(&model.net, &model.arch).with_telemetry(telemetry.clone());
    let perf = predictor.perf();
    println!(
        "deployed {}: latency {:.1} µs per subject, capacity {:.0} fps\n",
        predictor.arch().name,
        perf.latency_us,
        perf.throughput_fps
    );

    // Simulate a gate: 40 subjects pass, ~1 every 2 seconds.
    let gen = GeneratorConfig {
        img_size: 32,
        supersample: 3,
    };
    let subjects = Dataset::generate_balanced(&gen, 10, 0x6A7E);
    let mut admitted = 0usize;
    let mut rejected = [0usize; 4];
    for i in 0..subjects.len() {
        let decision = predictor.classify(&subjects.image(i));
        if decision == MaskClass::CorrectlyMasked {
            admitted += 1;
        } else {
            rejected[decision.label()] += 1;
        }
    }
    println!("gate log ({} subjects):", subjects.len());
    println!("  admitted (correctly masked): {admitted}");
    for class in [
        MaskClass::NoseExposed,
        MaskClass::NoseMouthExposed,
        MaskClass::ChinExposed,
    ] {
        println!(
            "  turned away ({}): {}",
            class.full_name(),
            rejected[class.label()]
        );
    }

    // Power accounting: one subject every 2 s keeps the accelerator asleep
    // almost all the time.
    let gate = predictor.board_power_w(OperatingMode::SingleGate {
        subjects_per_s: 0.5,
    });
    let crowd = predictor.board_power_w(OperatingMode::CrowdStatistics);
    println!(
        "\npower: gate mode {gate:.3} W (≈ the paper's 1.6 W idle), full pipeline {crowd:.2} W"
    );
    let day_wh = gate * 8.0; // an 8-hour shift
    println!("an 8-hour shift costs ≈ {day_wh:.1} Wh — battery-friendly edge deployment");

    // Everything above was also metered: per-epoch training dynamics plus
    // the per-subject classification latency histogram.
    println!("\n{}", telemetry.snapshot().render_text());
}
