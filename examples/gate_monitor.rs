//! Single-gate deployment scenario (Sec. IV-B, low-power mode).
//!
//! Trains a reduced n-CNV, deploys it, then simulates a work day at a
//! building entrance: subjects arrive sporadically, each triggering one
//! classification. Reports per-class gate decisions, latency and the
//! near-idle power draw that motivates the paper's 1.6 W claim.
//!
//! A second act scales the same predictor to a *multi-gate* building:
//! several entrance cameras submit concurrently to one shared
//! `bcp-serve` engine, which micro-batches their frames across a pool of
//! replicas — per-camera tallies stay exact, and the engine's `serve.*`
//! metrics land in the same telemetry registry as the gate log.
//!
//! ```sh
//! cargo run --release --example gate_monitor
//! ```

use bcp_dataset::{Dataset, GeneratorConfig, MaskClass};
use bcp_telemetry::Registry;
use binarycop::arch::ArchKind;
use binarycop::predictor::{BinaryCoP, OperatingMode};
use binarycop::recipe::{run_instrumented, Recipe};

fn main() {
    let telemetry = Registry::new();
    let recipe = Recipe {
        train_per_class: 60,
        augment_copies: 0,
        test_per_class: 20,
        epochs: 6,
        ..Recipe::quick(ArchKind::NCnv)
    };
    println!("training n-CNV for the gate …");
    let model = run_instrumented(&recipe, Some(&telemetry), |s| {
        println!("  epoch {:>2}: loss {:.4}", s.epoch, s.loss);
    });
    println!("test accuracy {:.1}%\n", model.test_accuracy * 100.0);

    let predictor =
        BinaryCoP::from_trained(&model.net, &model.arch).with_telemetry(telemetry.clone());
    let perf = predictor.perf();
    println!(
        "deployed {}: latency {:.1} µs per subject, capacity {:.0} fps\n",
        predictor.arch().name,
        perf.latency_us,
        perf.throughput_fps
    );

    // Simulate a gate: 40 subjects pass, ~1 every 2 seconds.
    let gen = GeneratorConfig {
        img_size: 32,
        supersample: 3,
    };
    let subjects = Dataset::generate_balanced(&gen, 10, 0x6A7E);
    let mut admitted = 0usize;
    let mut rejected = [0usize; 4];
    for i in 0..subjects.len() {
        let decision = predictor.classify(&subjects.image(i));
        if decision == MaskClass::CorrectlyMasked {
            admitted += 1;
        } else {
            rejected[decision.label()] += 1;
        }
    }
    println!("gate log ({} subjects):", subjects.len());
    println!("  admitted (correctly masked): {admitted}");
    for class in [
        MaskClass::NoseExposed,
        MaskClass::NoseMouthExposed,
        MaskClass::ChinExposed,
    ] {
        println!(
            "  turned away ({}): {}",
            class.full_name(),
            rejected[class.label()]
        );
    }

    // Power accounting: one subject every 2 s keeps the accelerator asleep
    // almost all the time.
    let gate = predictor.board_power_w(OperatingMode::SingleGate {
        subjects_per_s: 0.5,
    });
    let crowd = predictor.board_power_w(OperatingMode::CrowdStatistics);
    println!(
        "\npower: gate mode {gate:.3} W (≈ the paper's 1.6 W idle), full pipeline {crowd:.2} W"
    );
    let day_wh = gate * 8.0; // an 8-hour shift
    println!("an 8-hour shift costs ≈ {day_wh:.1} Wh — battery-friendly edge deployment");

    // Multi-camera mode: four entrance cameras share one serving engine
    // (two predictor replicas), each camera a concurrent closed-loop
    // client watching its own stream of subjects.
    const CAMERAS: usize = 4;
    const SUBJECTS_PER_CAMERA: usize = 10;
    println!("\nmulti-gate mode: {CAMERAS} cameras → shared serving engine (2 replicas)");
    let engine = binarycop::serve::engine(&predictor, 2, bcp_serve::ServeConfig::default());
    let eng = &engine;
    let subj = &subjects;
    let per_camera: Vec<(usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CAMERAS)
            .map(|cam| {
                s.spawn(move || {
                    let (mut seen, mut admitted) = (0usize, 0usize);
                    for i in 0..SUBJECTS_PER_CAMERA {
                        let frame = subj.image((cam * SUBJECTS_PER_CAMERA + i) % subj.len());
                        match eng.classify(&frame) {
                            Ok(class) => {
                                seen += 1;
                                if class == MaskClass::CorrectlyMasked {
                                    admitted += 1;
                                }
                            }
                            Err(e) => println!("  camera {cam}: dropped a frame ({e})"),
                        }
                    }
                    (seen, admitted)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("camera"))
            .collect()
    });
    engine.shutdown();
    for (cam, (seen, admitted)) in per_camera.iter().enumerate() {
        println!("  camera {cam}: {seen} subjects, {admitted} admitted");
    }
    let total: usize = per_camera.iter().map(|(s, _)| s).sum();
    assert_eq!(
        total,
        CAMERAS * SUBJECTS_PER_CAMERA,
        "serving engine must answer every camera frame exactly once"
    );

    // Final act: the same building, but the accelerator's weight SRAM is
    // under an SEU storm (paper Sec. IV robustness — a flipped weight bit
    // is a full sign change). A *guarded* engine survives it: the canary
    // gate quarantines the corrupted replica, its scrubber restores the
    // golden weights off the hot path, and the worker re-earns rotation
    // through probation — with zero wrong gate decisions in between.
    println!("\nfault storm: 8 bit flips into replica 0's weight memory (guarded engine)");
    let guarded = binarycop::guard::guarded_engine(
        &predictor,
        2,
        bcp_serve::ServeConfig {
            background_scrub: Some(8),
            ..bcp_serve::ServeConfig::default()
        },
    );
    // Pick a storm the canary gate can see (canary-invisible corruption is
    // mopped up by the background scrub instead).
    let canary = bcp_serve::canary_frame(3, 32, 32);
    let golden = bcp_serve::Replica::canary(&predictor, &canary);
    let storm_seed = (0u64..)
        .find(|&s| {
            let mut q = predictor.clone();
            bcp_serve::Replica::inject_faults(&mut q, 8, 0x5707 + s);
            bcp_serve::Replica::canary(&q, &canary) != golden
        })
        .map(|s| 0x5707 + s)
        .expect("some storm perturbs the canary");
    guarded.inject_faults(0, 8, storm_seed);

    let eng = &guarded;
    let pred = &predictor;
    let (mut correct, mut faulted) = (0usize, 0usize);
    let outcomes: Vec<(usize, usize)> = std::thread::scope(|s| {
        (0..CAMERAS)
            .map(|cam| {
                s.spawn(move || {
                    let (mut ok, mut detected) = (0usize, 0usize);
                    for i in 0..SUBJECTS_PER_CAMERA {
                        let frame = subj.image((cam * SUBJECTS_PER_CAMERA + i) % subj.len());
                        match eng.classify(&frame) {
                            Ok(class) => {
                                assert_eq!(
                                    class,
                                    pred.classify(&frame),
                                    "a guarded engine must never serve a wrong answer"
                                );
                                ok += 1;
                            }
                            Err(_) => detected += 1,
                        }
                    }
                    (ok, detected)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("camera"))
            .collect()
    });
    for (ok, detected) in &outcomes {
        correct += ok;
        faulted += detected;
    }
    // Give the wounded worker time to finish its repair → probation walk.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while guarded.worker_state(0) != bcp_serve::WorkerState::Healthy
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let states = guarded.worker_states();
    guarded.shutdown();
    println!(
        "  {correct} correct decisions, {faulted} detectably failed, 0 wrong answers; \
         worker states after healing: {states:?}"
    );
    assert_eq!(
        correct + faulted,
        CAMERAS * SUBJECTS_PER_CAMERA,
        "every frame resolved exactly once, storm or not"
    );
    assert_eq!(
        states,
        vec![bcp_serve::WorkerState::Healthy; 2],
        "the storm-hit worker must heal back into rotation"
    );

    // Everything above was also metered: per-epoch training dynamics, the
    // per-subject classification latency histogram, the serving engine's
    // queue/batch/latency metrics (serve.*), the recovery lifecycle
    // counters (serve.worker.*) and the scrubber's guard.scrub.* series.
    println!("\n{}", telemetry.snapshot().render_text());
}
