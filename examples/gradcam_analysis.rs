//! Grad-CAM interpretability walkthrough (Sec. III-C / IV-C).
//!
//! Trains a reduced n-CNV, then reproduces the structure of the paper's
//! Figs. 3–9 in ASCII: for each class and each generalization probe (age,
//! hair/headgear, face manipulation), show where the BNN looks.
//!
//! ```sh
//! cargo run --release --example gradcam_analysis            # figs 3,7,9
//! cargo run --release --example gradcam_analysis -- 4       # one figure
//! ```

use bcp_nn::Sequential;
use binarycop::arch::ArchKind;
use binarycop::experiments::gradcam_figure_report;
use binarycop::recipe::{run, Recipe};

fn main() {
    let figures: Vec<u8> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("figure number 3–9"))
        .collect();
    let figures = if figures.is_empty() {
        vec![3, 7, 9]
    } else {
        figures
    };

    let recipe = Recipe {
        train_per_class: 80,
        augment_copies: 0,
        test_per_class: 20,
        epochs: 8,
        ..Recipe::quick(ArchKind::NCnv)
    };
    println!("training n-CNV for Grad-CAM analysis …");
    let model = run(&recipe, |s| {
        println!("  epoch {:>2}: loss {:.4}", s.epoch, s.loss);
    });
    println!("test accuracy {:.1}%\n", model.test_accuracy * 100.0);

    let mut net = model.net;
    for fig in figures {
        // conv4 = the paper's conv2_2 Grad-CAM target layer.
        let mut models: Vec<(&str, &mut Sequential, &str)> =
            vec![("BCoP-n-CNV", &mut net, "conv4")];
        println!(
            "{}",
            gradcam_figure_report(fig, 32, 1000 + fig as u64, &mut models)
        );
    }
    println!(
        "legend: ' .:-=+*#%@' from cold to hot; centroids are (row, col) of \
         the attention mass.\nThe paper's qualitative claim: BNN attention \
         concentrates on the class-decisive region (nose line, chin, mask \
         top edge) and is robust to hair/headgear/manipulation confusers."
    );
}
