//! Quickstart: train a miniature BinaryCoP, deploy it to the FINN pipeline
//! simulator, and classify synthetic masked faces.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//! Runs in a few seconds; for the paper-scale flow see the `experiments`
//! binary in the `binarycop` crate.

use bcp_dataset::{Dataset, GeneratorConfig, MaskClass};
use binarycop::predictor::{BinaryCoP, OperatingMode};
use binarycop::recipe::{run, Recipe};

fn main() {
    // 1. Train: a miniature architecture on the synthetic MaskedFace-Net
    //    substitute (seconds on a laptop core).
    let recipe = Recipe {
        train_per_class: 200,
        test_per_class: 40,
        augment_copies: 1,
        epochs: 15,
        ..Recipe::test_scale()
    };
    println!(
        "training {} on {} samples/class …",
        recipe.arch.name, recipe.train_per_class
    );
    let model = run(&recipe, |s| {
        println!(
            "  epoch {:>2}: loss {:.4}  train acc {:.1}%",
            s.epoch,
            s.loss,
            s.train_accuracy * 100.0
        );
    });
    println!("test accuracy: {:.1}%\n", model.test_accuracy * 100.0);

    // 2. Deploy: binarize weights, fold batch-norms into thresholds, build
    //    the streaming XNOR pipeline.
    let predictor = BinaryCoP::from_trained(&model.net, &model.arch);
    println!("{}", predictor.pipeline().describe());
    println!("{}", predictor.summary());

    // 3. Classify fresh faces through the deployed pipeline.
    let gen = GeneratorConfig {
        img_size: model.arch.input_size,
        supersample: 3,
    };
    let fresh = Dataset::generate_balanced(&gen, 3, 0xFACE);
    let mut correct = 0;
    for i in 0..fresh.len() {
        let truth = MaskClass::from_label(fresh.labels[i]);
        let predicted = predictor.classify(&fresh.image(i));
        if predicted == truth {
            correct += 1;
        }
        println!(
            "  sample {i:>2}: true {:<22} → predicted {}",
            truth.full_name(),
            predicted.full_name()
        );
    }
    println!(
        "\npipeline accuracy on fresh samples: {correct}/{} — gate power {:.2} W",
        fresh.len(),
        predictor.board_power_w(OperatingMode::SingleGate {
            subjects_per_s: 0.5
        })
    );
}
