//! Temporal gate monitoring: classify a subject over an approach sequence.
//!
//! Single camera frames are noisy; the gate has several frames of each
//! subject as they approach. This example trains a reduced n-CNV, then
//! runs synthetic approach sequences (the subject's face grows and drifts
//! toward center over 6 frames) through the deployed pipeline with
//! majority voting — and compares per-frame vs voted accuracy.
//!
//! ```sh
//! cargo run --release --example video_gate
//! ```

use bcp_dataset::video::gate_sequence;
use bcp_dataset::{GeneratorConfig, MaskClass};
use binarycop::arch::ArchKind;
use binarycop::predictor::BinaryCoP;
use binarycop::recipe::{run, Recipe};

fn main() {
    let recipe = Recipe {
        train_per_class: 60,
        augment_copies: 1,
        test_per_class: 20,
        epochs: 6,
        ..Recipe::quick(ArchKind::NCnv)
    };
    println!("training n-CNV for the video gate …");
    let model = run(&recipe, |_| {});
    println!("test accuracy {:.1}%\n", model.test_accuracy * 100.0);
    let predictor = BinaryCoP::from_trained(&model.net, &model.arch);

    let gen = GeneratorConfig {
        img_size: 32,
        supersample: 3,
    };
    let subjects = 24usize;
    let frames_per_subject = 6usize;
    let mut frame_correct = 0usize;
    let mut frame_total = 0usize;
    let mut vote_correct = 0usize;
    for s in 0..subjects {
        let class = MaskClass::ALL[s % 4];
        let seq = gate_sequence(&gen, class, frames_per_subject, 0x71DE0 + s as u64);
        for f in &seq.frames {
            if predictor.classify(f) == class {
                frame_correct += 1;
            }
            frame_total += 1;
        }
        let voted = predictor.classify_sequence(&seq.frames);
        if voted == class {
            vote_correct += 1;
        }
        println!(
            "subject {s:>2}: true {:<22} voted {}",
            class.full_name(),
            voted.full_name()
        );
    }
    println!(
        "\nper-frame accuracy: {:.1}%   majority-vote accuracy: {:.1}%",
        100.0 * frame_correct as f64 / frame_total as f64,
        100.0 * vote_correct as f64 / subjects as f64,
    );
    let perf = predictor.perf();
    println!(
        "voting costs {} frames × {:.0} µs steady-state = {:.1} ms per subject — \
         invisible at gate walking speeds",
        frames_per_subject,
        1e6 * perf.initiation_interval as f64 / 100.0e6,
        frames_per_subject as f64 * perf.initiation_interval as f64 / 100.0e3,
    );
}
