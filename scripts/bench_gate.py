#!/usr/bin/env python3
"""CI bench gate over BENCH_summary.json.

Two enforced invariants, both measured by `cargo bench -p bcp-bench`
(host-native codegen via .cargo/config.toml):

1. Blocked-kernel speedup: the register-blocked multi-frame GEMM must
   deliver at least MIN_BLOCKED_SPEEDUP the single-frame kernel's frames/s
   at the gated batch size (B=8) on the large-MVTU shape, where the
   single-frame loop is memory-bound (it re-streams the packed weight
   matrix once per frame; the blocked kernel streams it once per register
   block of 4 frames).

2. Engine-vs-sequential at 1 worker: the micro-batching engine under
   pipelined closed-loop load must track the same predictor driven
   sequentially, up to two explicitly budgeted costs:

   * The canary integrity tax. With `canary_every = 1` (the default, and
     the invariant that a corrupted replica can never emit a wrong
     classification) the worker runs exactly one extra full-frame
     inference per batch — a tax of 1/max_batch = 1/8 on compute. Hiding
     the canary for the benchmark would gate a configuration nobody
     serves with, so the gate budgets it instead.
   * The single-core client-wake budget. Completing a batch wakes its
     clients; on a one-core runner those wakes preempt the worker's next
     batch, a context-switch cost a zero-thread sequential loop never
     pays. Measured at 11-20% here; budgeted with headroom below. On a
     multi-core host this term vanishes (clients wake on other cores) —
     the gate is the single-core-honest form of ROADMAP's "engine >=
     sequential at 1 worker".

   Both sides are measured *paired*: the bench alternates sequential and
   engine rounds inside one loop and records the two medians, so the slow
   ±25% frequency/neighbor drift of a shared runner cancels out of the
   ratio (pairwise spread is ±4%). The gate is deliberately tight enough
   to catch the failure mode it exists for — if micro-batching collapses
   to batches of ~1, the canary runs per frame and every completion wakes
   alone, and the ratio lands at >= 1.6x.

Usage: bench_gate.py [BENCH_summary.json]
Exits non-zero with a per-check verdict when any gate fails.
"""

import json
import sys

MIN_BLOCKED_SPEEDUP = 2.0

# Engine gate budget. MAX_BATCH mirrors ServeConfig::default().max_batch;
# the canary tax is exactly one extra inference per batch of MAX_BATCH.
MAX_BATCH = 8
CANARY_TAX = 1.0 / MAX_BATCH
# Context switches from completion wakes on a single core: measured
# 0.11-0.20 across runs depending on neighbor load on the shared vCPU,
# budgeted at 0.25 so a noisy neighbor does not flake the gate while a
# batching collapse (>= 1.6x) still fails it by a wide margin.
WAKE_BUDGET = 0.25

GATED_KERNEL = ("kernel_gemm/blocked_fps/B8", "kernel_gemm/single_fps/B8")
GATED_ENGINE = (
    "serve_throughput/paired_engine_1w_pipelined",
    "serve_throughput/paired_sequential",
)

# Reported for context (not gated): the fused-threshold operator path and
# the L1-resident CNV shape, where no >=2x exists by construction, plus
# the independently timed (unpaired, drift-prone) serving entries.
CONTEXT_RATIOS = [
    ("kernel_gemm/mvtu_fused_fps_B8", "kernel_gemm/mvtu_single_fps_B8"),
    ("kernel_gemm_cnv/blocked_fps_B8", "kernel_gemm_cnv/single_fps_B8"),
    ("kernel_gemm_cnv/mvtu_fused_fps_B8", "kernel_gemm_cnv/mvtu_single_fps_B8"),
    ("serve_throughput/sequential_classify", "serve_throughput/engine_1w_8clients"),
    ("serve_throughput/sequential_classify",
     "serve_throughput/engine_1w_8clients_pipelined"),
]


def ns(summary, key):
    try:
        return float(summary[key]["ns_per_iter"])
    except KeyError:
        sys.exit(f"bench gate: entry {key!r} missing from summary "
                 f"(run `cargo bench -p bcp-bench` first)")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_summary.json"
    with open(path) as f:
        summary = json.load(f)

    failures = []

    fast, slow = GATED_KERNEL
    speedup = ns(summary, slow) / ns(summary, fast)
    verdict = "ok" if speedup >= MIN_BLOCKED_SPEEDUP else "FAIL"
    print(f"[{verdict}] blocked GEMM speedup at B=8: {speedup:.2f}x "
          f"(gate: >= {MIN_BLOCKED_SPEEDUP:.1f}x)")
    if speedup < MIN_BLOCKED_SPEEDUP:
        failures.append("blocked GEMM speedup")

    engine, sequential = GATED_ENGINE
    bound = 1.0 + CANARY_TAX + WAKE_BUDGET
    ratio = ns(summary, engine) / ns(summary, sequential)
    verdict = "ok" if ratio <= bound else "FAIL"
    print(f"[{verdict}] engine@1w vs sequential (paired): {ratio:.3f}x "
          f"(gate: <= {bound:.3f}x = 1 + canary {CANARY_TAX:.3f} "
          f"+ wake budget {WAKE_BUDGET:.2f})")
    # Decomposition: per-inference cost once the canary's extra inferences
    # are counted as work. The engine runs N user frames plus N/max_batch
    # canary frames per iteration; at parity with sequential per-frame
    # cost this term is 1.0 + the wake cost alone.
    per_inf = ratio / (1.0 + CANARY_TAX)
    print(f"[info] engine per-inference cost incl. canary work: "
          f"{per_inf:.3f}x sequential per-frame")
    if ratio > bound:
        failures.append("engine amortization")

    for fast, slow in CONTEXT_RATIOS:
        if fast in summary and slow in summary:
            print(f"[info] {fast} vs {slow}: "
                  f"{ns(summary, slow) / ns(summary, fast):.2f}x")

    if failures:
        sys.exit(f"bench gate failed: {', '.join(failures)}")
    print("bench gate passed")


if __name__ == "__main__":
    main()
