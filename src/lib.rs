//! Umbrella crate for the BinaryCoP reproduction workspace.
//!
//! This package only hosts the workspace-level `examples/` and `tests/`
//! directories; all functionality lives in the member crates, re-exported
//! here for convenience:
//!
//! - [`bcp_tensor`] — FP32 tensor substrate (NCHW, im2col, GEMM, pooling)
//! - [`bcp_bitpack`] — bit-packed binary linear algebra (XNOR + popcount)
//! - [`bcp_nn`] — BNN training framework (latent weights, STE, batch-norm)
//! - [`bcp_dataset`] — synthetic MaskedFace-Net substitute
//! - [`bcp_finn`] — FINN-style streaming accelerator simulator
//! - [`bcp_gradcam`] — Grad-CAM interpretability
//! - [`binarycop`] — the end-to-end BinaryCoP system (architectures,
//!   training recipes, deployment, experiments)

pub use bcp_bitpack;
pub use bcp_dataset;
pub use bcp_finn;
pub use bcp_gradcam;
pub use bcp_nn;
pub use bcp_tensor;
pub use binarycop;
