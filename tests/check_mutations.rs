//! Mutation corpus for the static verifier (`bcp-check`).
//!
//! Every test takes one of the three paper architectures (CNV, n-CNV,
//! μ-CNV), flips a single field, and asserts that `check_arch` rejects the
//! mutant with the *expected* stable `BCP0xx` code — not merely "some
//! error". The unmutated seeds must come back clean on both supported
//! devices, so the corpus also pins the verifier's false-positive rate at
//! zero for the designs the paper actually builds.

use bcp_check::{check_arch, check_pipeline, ArchSpec, CheckConfig, Code, Report, Severity};
use bcp_finn::device::{Z7010, Z7020};
use bcp_finn::mvtu::{BinaryMvtu, FixedInputMvtu};
use bcp_finn::pipeline::{Pipeline, Stage};
use bcp_finn::Folding;
use binarycop::arch::ArchKind;

fn spec_of(kind: ArchKind) -> ArchSpec {
    kind.arch().spec()
}

/// Apply `mutate` to a fresh spec of `kind` and assert the checker rejects
/// it with `expected` among its *error*-severity findings.
fn assert_rejected(kind: ArchKind, expected: Code, mutate: impl FnOnce(&mut ArchSpec)) {
    let mut spec = spec_of(kind);
    mutate(&mut spec);
    let report = check_arch(&spec, &CheckConfig::default());
    assert!(
        !report.is_clean(),
        "mutant of {} should have been rejected:\n{}",
        spec.name,
        report.render_text()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == expected && d.severity == Severity::Error),
        "mutant of {} should carry error {}:\n{}",
        spec.name,
        expected.as_str(),
        report.render_text()
    );
}

// ---------------------------------------------------------------- seeds --

#[test]
fn all_seed_arches_check_clean_on_their_target_device() {
    for kind in ArchKind::ALL {
        let report = check_arch(&spec_of(kind), &CheckConfig::default());
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(
            report.warning_count(),
            0,
            "no warnings expected on the paper target:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn all_seed_arches_check_clean_on_both_devices() {
    // Over-budget findings on a *foreign* device degrade to warnings, so
    // every seed is accepted (exit-0 clean) on the Z7020 and the Z7010.
    for kind in ArchKind::ALL {
        for device in [Z7020, Z7010] {
            let cfg = CheckConfig {
                device: Some(device),
                ..CheckConfig::default()
            };
            let report = check_arch(&spec_of(kind), &cfg);
            assert!(
                report.is_clean(),
                "{} on {}:\n{}",
                spec_of(kind).name,
                device.name,
                report.render_text()
            );
        }
    }
}

#[test]
fn cnv_on_the_smaller_z7010_warns_but_is_not_rejected() {
    let cfg = CheckConfig {
        device: Some(Z7010),
        ..CheckConfig::default()
    };
    let report = check_arch(&spec_of(ArchKind::Cnv), &cfg);
    assert!(report.is_clean(), "{}", report.render_text());
    assert!(
        report.has_code(Code::LutOverBudget),
        "CNV's ~26k LUTs exceed the Z7010's 17600:\n{}",
        report.render_text()
    );
}

// ---------------------------------------------- shape mutations (BCP00x) --

#[test]
fn cnv_conv_chain_break_is_bcp001() {
    assert_rejected(ArchKind::Cnv, Code::ConvChainMismatch, |s| {
        s.convs[1].c_in = 32;
    });
}

#[test]
fn ncnv_conv_chain_break_is_bcp001() {
    assert_rejected(ArchKind::NCnv, Code::ConvChainMismatch, |s| {
        s.convs[2].c_in = 99;
    });
}

#[test]
fn cnv_fc_chain_break_is_bcp002() {
    assert_rejected(ArchKind::Cnv, Code::FcChainMismatch, |s| {
        s.fcs[1].f_in = 256;
    });
}

#[test]
fn cnv_flatten_mismatch_is_bcp003() {
    assert_rejected(ArchKind::Cnv, Code::FlattenMismatch, |s| {
        s.fcs[0].f_in = 512;
    });
}

#[test]
fn ncnv_flatten_mismatch_is_bcp003() {
    assert_rejected(ArchKind::NCnv, Code::FlattenMismatch, |s| {
        s.fcs[0].f_in = 63;
    });
}

#[test]
fn cnv_wrong_head_width_is_bcp004() {
    assert_rejected(ArchKind::Cnv, Code::HeadWidthMismatch, |s| {
        s.fcs[2].f_out = 5;
    });
}

#[test]
fn mucnv_wrong_head_width_is_bcp004() {
    assert_rejected(ArchKind::MicroCnv, Code::HeadWidthMismatch, |s| {
        s.fcs[1].f_out = 2;
    });
}

#[test]
fn cnv_extra_pe_entry_is_bcp005() {
    assert_rejected(ArchKind::Cnv, Code::PeVectorLength, |s| {
        s.pe.push(4);
    });
}

#[test]
fn cnv_missing_simd_entry_is_bcp006() {
    assert_rejected(ArchKind::Cnv, Code::SimdVectorLength, |s| {
        s.simd.pop();
    });
}

#[test]
fn cnv_odd_pool_extent_is_bcp007() {
    // 30 → 28 → 26 → pool on an odd 13×13 feature map.
    assert_rejected(ArchKind::Cnv, Code::OddPoolExtent, |s| {
        s.input_size = 30;
    });
}

#[test]
fn mucnv_pool_after_odd_conv_is_bcp007() {
    // μ-CNV's conv5 emits 3×3; pooling it needs an even extent.
    assert_rejected(ArchKind::MicroCnv, Code::OddPoolExtent, |s| {
        s.convs[4].pool_after = true;
    });
}

#[test]
fn cnv_spatial_underflow_is_bcp008() {
    // 8 → 6 → 4 → pool 2: conv3's 3×3 kernel no longer fits.
    assert_rejected(ArchKind::Cnv, Code::SpatialUnderflow, |s| {
        s.input_size = 8;
    });
}

#[test]
fn mucnv_missing_head_is_bcp009() {
    assert_rejected(ArchKind::MicroCnv, Code::PipelineStructure, |s| {
        s.fcs.clear();
        s.pe.truncate(5);
        s.simd.truncate(5);
    });
}

// -------------------------------------------- folding mutations (BCP01x) --

#[test]
fn cnv_zero_pe_is_bcp010() {
    assert_rejected(ArchKind::Cnv, Code::ZeroFolding, |s| {
        s.pe[0] = 0;
    });
}

#[test]
fn cnv_zero_simd_is_bcp010() {
    assert_rejected(ArchKind::Cnv, Code::ZeroFolding, |s| {
        s.simd[4] = 0;
    });
}

#[test]
fn cnv_pe_not_dividing_rows_is_bcp011() {
    // conv2 has 64 output channels; 33 ∤ 64.
    assert_rejected(ArchKind::Cnv, Code::PeNotDivisor, |s| {
        s.pe[1] = 33;
    });
}

#[test]
fn ncnv_pe_not_dividing_head_is_bcp011() {
    // fc3 has 4 output neurons; 3 ∤ 4.
    assert_rejected(ArchKind::NCnv, Code::PeNotDivisor, |s| {
        s.pe[8] = 3;
    });
}

#[test]
fn cnv_simd_not_dividing_fanin_is_bcp012() {
    // conv2's fan-in is 64·9 = 576; 30 ∤ 576.
    assert_rejected(ArchKind::Cnv, Code::SimdNotDivisor, |s| {
        s.simd[1] = 30;
    });
}

#[test]
fn ncnv_simd_not_dividing_fanin_is_bcp012() {
    // conv3's fan-in is 16·9 = 144; 15 ∤ 144.
    assert_rejected(ArchKind::NCnv, Code::SimdNotDivisor, |s| {
        s.simd[2] = 15;
    });
}

#[test]
fn mucnv_simd_not_dividing_first_layer_is_bcp012() {
    // conv1's fan-in is 3·9 = 27; 2 ∤ 27.
    assert_rejected(ArchKind::MicroCnv, Code::SimdNotDivisor, |s| {
        s.simd[0] = 2;
    });
}

// --------------------------------- cycle / resource mutations (BCP02x/05x) --

#[test]
fn cnv_fully_sequential_folding_blows_the_cycle_budget_bcp020() {
    // pe = simd = 1 everywhere: conv2 alone needs 64·576·28² ≈ 28.9M
    // cycles/frame, an order of magnitude over the 30 fps budget at 100 MHz.
    assert_rejected(ArchKind::Cnv, Code::CycleBudgetExceeded, |s| {
        for p in s.pe.iter_mut() {
            *p = 1;
        }
        for m in s.simd.iter_mut() {
            *m = 1;
        }
    });
}

#[test]
fn cnv_fully_parallel_conv6_blows_the_lut_budget_bcp050() {
    // 256 PEs × 2304 SIMD lanes is a legal folding but ≈ 3.8M LUTs of
    // synapse fabric — far past the Z7020's 53200.
    assert_rejected(ArchKind::Cnv, Code::LutOverBudget, |s| {
        s.pe[5] = 256;
        s.simd[5] = 2304;
    });
}

#[test]
fn mucnv_widened_conv4_blows_the_dsp_budget_bcp052() {
    // With DSP offload, 32×32 parallelism on conv4 pushes the offloaded
    // popcount lanes past the Z7010's 80 DSP slices.
    assert_rejected(ArchKind::MicroCnv, Code::DspOverBudget, |s| {
        s.pe[3] = 32;
    });
}

// -------------------------------------------------- config gate (BCP030) --

#[test]
fn zero_capacity_fifo_is_bcp030() {
    let cfg = CheckConfig {
        fifo_depth: 0,
        ..CheckConfig::default()
    };
    let report = check_arch(&spec_of(ArchKind::Cnv), &cfg);
    assert!(!report.is_clean());
    assert!(
        report.has_code(Code::FifoDeadlock),
        "{}",
        report.render_text()
    );
}

// --------------------------------------- pipeline-level mutants (BCP04x) --

fn weights(rows: usize, cols: usize) -> bcp_bitpack::BitMatrix {
    bcp_bitpack::pack::pack_matrix(rows, cols, &vec![1.0f32; rows * cols])
}

fn thresholds(rows: usize, tau: i64) -> bcp_bitpack::ThresholdUnit {
    bcp_bitpack::ThresholdUnit::new(vec![bcp_bitpack::ThresholdChannel::Ge(tau); rows])
}

/// A minimal shape-consistent pipeline: 3×4×4 input → 8×2×2 conv →
/// 16-wide hidden dense → 4 logits.
fn tiny_pipeline(
    hidden_thresholds: Option<bcp_bitpack::ThresholdUnit>,
    hidden_tau: i64,
) -> Pipeline {
    let hidden = hidden_thresholds.unwrap_or_else(|| thresholds(16, hidden_tau));
    Pipeline::new(
        "tiny",
        vec![
            Stage::ConvFixed {
                name: "conv1".into(),
                mvtu: FixedInputMvtu::new(weights(8, 27), thresholds(8, 0), Folding::new(2, 3)),
                k: 3,
                in_dims: (3, 4, 4),
            },
            Stage::DenseBinary {
                name: "fc1".into(),
                mvtu: BinaryMvtu::new(weights(16, 32), Some(hidden), Folding::new(2, 8)),
            },
            Stage::DenseLogits {
                name: "fc2".into(),
                mvtu: BinaryMvtu::new(weights(4, 16), None, Folding::new(1, 4)),
            },
        ],
    )
}

#[test]
fn sane_tiny_pipeline_checks_clean() {
    let report = check_pipeline(&tiny_pipeline(None, 0), false, &CheckConfig::default());
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn unreachable_threshold_is_bcp040() {
    // fc1 has 32 binary inputs: its accumulators live in [−32, 32], so a
    // Ge(100) channel is unsatisfiable and the fold that produced it is
    // numerically wrong.
    let report = check_pipeline(&tiny_pipeline(None, 100), false, &CheckConfig::default());
    assert!(!report.is_clean());
    assert!(
        report.has_code(Code::ThresholdOutOfRange),
        "{}",
        report.render_text()
    );
}

#[test]
fn boundary_threshold_is_a_dead_channel_warning_bcp041() {
    // Ge(33) is representable (one past the top of [−32, 32]) but can
    // never fire: the channel is constant-false. Warn, don't reject.
    let report = check_pipeline(&tiny_pipeline(None, 33), false, &CheckConfig::default());
    assert!(report.is_clean(), "{}", report.render_text());
    assert!(
        report.has_code(Code::DeadThresholdChannel),
        "{}",
        report.render_text()
    );
}

#[test]
fn missing_hidden_thresholds_is_bcp042() {
    let mut p = tiny_pipeline(None, 0);
    if let Stage::DenseBinary { mvtu, .. } = p.stage_mut(1) {
        *mvtu = BinaryMvtu::new(weights(16, 32), None, Folding::new(2, 8));
    }
    let report = check_pipeline(&p, false, &CheckConfig::default());
    assert!(!report.is_clean());
    assert!(
        report.has_code(Code::MissingThresholds),
        "{}",
        report.render_text()
    );
}

#[test]
fn thresholded_logits_layer_is_bcp043() {
    let mut p = tiny_pipeline(None, 0);
    if let Stage::DenseLogits { mvtu, .. } = p.stage_mut(2) {
        *mvtu = BinaryMvtu::new(weights(4, 16), Some(thresholds(4, 0)), Folding::new(1, 4));
    }
    let report = check_pipeline(&p, false, &CheckConfig::default());
    // Binarizing the head discards logit magnitudes — suspicious but
    // still executable, so it is a warning, not a rejection.
    assert!(report.is_clean(), "{}", report.render_text());
    assert!(
        report.has_code(Code::ExtraThresholds),
        "{}",
        report.render_text()
    );
}

// ------------------------------------------------------ documentation --

#[test]
fn readme_documents_every_diagnostic_code() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md readable");
    for code in Code::ALL {
        assert!(
            readme.contains(code.as_str()),
            "README error-code table is missing {} ({})",
            code.as_str(),
            code.describe()
        );
    }
}

// ------------------------------------------------------- serialization --

#[test]
fn json_report_round_trips_with_stable_codes() {
    let mut spec = spec_of(ArchKind::Cnv);
    spec.pe[1] = 33;
    spec.fcs[2].f_out = 5;
    let report = check_arch(&spec, &CheckConfig::default());
    assert!(!report.is_clean());

    let json = serde_json::to_string(&report).expect("report serializes");
    // Codes and severities are stable strings, not enum ordinals.
    assert!(json.contains("\"BCP004\""), "{json}");
    assert!(json.contains("\"error\""), "{json}");

    let back: Report = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back.subject, report.subject);
    assert_eq!(back.device, report.device);
    assert_eq!(back.diagnostics.len(), report.diagnostics.len());
    for (a, b) in back.diagnostics.iter().zip(&report.diagnostics) {
        assert_eq!(a.code, b.code);
        assert_eq!(a.severity, b.severity);
        assert_eq!(a.location, b.location);
        assert_eq!(a.message, b.message);
    }
}
