//! Architecture-space fuzzing of the deployment invariant.
//!
//! The bit-exactness proof in `binarycop::reference` covers the three
//! published prototypes; this test sweeps *random* valid architectures —
//! varying depth, channel widths, pool placement, head shape, foldings and
//! batch-norm statistics — and asserts the packed/folded pipeline still
//! agrees with the dense integer reference on every logit. This pins the
//! exporter's generality, not just its behaviour on Table I.

use bcp_finn::data::QuantMap;
use bcp_nn::Mode;
use bcp_tensor::Shape;
use binarycop::arch::{Arch, ConvLayer, FcLayer};
use binarycop::deploy::deploy;
use binarycop::model::build_bnn;
use binarycop::reference::IntegerReference;

/// Split-mix PRNG (no rand dependency needed here).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// Construct a random but structurally valid architecture.
fn random_arch(seed: u64) -> Arch {
    let mut rng = Rng(seed);
    let input_size = rng.pick(&[10usize, 12, 14, 16]);
    let n_convs = rng.pick(&[1usize, 2, 3]);
    let mut convs = Vec::new();
    let mut hw = input_size;
    let mut c_in = 3usize;
    for i in 0..n_convs {
        let c_out = rng.pick(&[4usize, 6, 8, 12]);
        // A pool is only legal when the post-conv extent is even and the
        // remaining layers still fit.
        let post = hw - 2;
        let remaining = n_convs - i - 1;
        let pool_ok = post.is_multiple_of(2) && post / 2 > 2 * remaining + 1;
        let pool_after = pool_ok && rng.chance(50);
        convs.push(ConvLayer {
            c_in,
            c_out,
            pool_after,
        });
        hw = if pool_after { post / 2 } else { post };
        c_in = c_out;
        if hw < 3 {
            break;
        }
    }
    let flat = c_in * hw * hw;
    let mut fcs = Vec::new();
    let mut f_in = flat;
    if rng.chance(60) {
        let hidden = rng.pick(&[8usize, 16, 24]);
        fcs.push(FcLayer {
            f_in,
            f_out: hidden,
        });
        f_in = hidden;
    }
    fcs.push(FcLayer { f_in, f_out: 4 });

    let n_layers = convs.len() + fcs.len();
    // Random (not necessarily exact-divisor) foldings: the cycle model pads
    // but functional results must be fold-invariant.
    let pe: Vec<usize> = (0..n_layers)
        .map(|_| rng.pick(&[1usize, 2, 3, 4]))
        .collect();
    let simd: Vec<usize> = (0..n_layers)
        .map(|_| rng.pick(&[1usize, 3, 8, 16]))
        .collect();
    Arch {
        name: format!("fuzz-{seed}"),
        input_size,
        convs,
        fcs,
        pe,
        simd,
        dsp_offload: false,
    }
}

fn random_frame(size: usize, seed: u64) -> QuantMap {
    let mut rng = Rng(seed);
    let px: Vec<f32> = (0..3 * size * size)
        .map(|_| (rng.next() % 256) as f32 / 255.0)
        .collect();
    QuantMap::from_unit_floats(3, size, size, &px)
}

#[test]
fn random_architectures_deploy_bit_exactly() {
    for seed in 0..40u64 {
        let arch = random_arch(seed);
        arch.validate();
        let mut net = build_bnn(&arch, seed + 1000);
        // Two train passes give non-trivial, distinct batch-norm stats.
        for pass in 0..2 {
            let x = bcp_tensor::init::uniform(
                Shape::nchw(3, 3, arch.input_size, arch.input_size),
                -1.0,
                1.0,
                seed * 7 + pass,
            );
            let _ = net.forward(&x, Mode::Train);
        }
        let pipeline = deploy(&net, &arch);
        let reference = IntegerReference::from_network(&net, &arch);
        for f in 0..3u64 {
            let frame = random_frame(arch.input_size, seed * 131 + f);
            assert_eq!(
                pipeline.forward(&frame),
                reference.forward(&frame),
                "arch {} diverged on frame {f}: {:?}",
                arch.name,
                arch
            );
        }
    }
}

#[test]
fn random_architectures_have_consistent_timing_model() {
    // The timing/resource models must at least be well-defined for every
    // valid architecture: II ≥ each stage's cycles, latency = sum.
    use bcp_finn::perf::CLOCK_100MHZ;
    for seed in 0..20u64 {
        let arch = random_arch(seed + 500);
        let mut net = build_bnn(&arch, seed);
        let x = bcp_tensor::init::uniform(
            Shape::nchw(2, 3, arch.input_size, arch.input_size),
            -1.0,
            1.0,
            seed,
        );
        let _ = net.forward(&x, Mode::Train);
        let pipeline = deploy(&net, &arch);
        let perf = CLOCK_100MHZ.analyze(&pipeline);
        assert_eq!(perf.latency_cycles, perf.stage_cycles.iter().sum::<u64>());
        assert_eq!(
            perf.initiation_interval,
            *perf.stage_cycles.iter().max().unwrap()
        );
        let usage = bcp_finn::resource::estimate(&pipeline, false);
        assert!(usage.luts > 0);
    }
}

#[test]
fn fuzz_architectures_cover_the_space() {
    // Meta-test: the generator actually varies depth, pooling and head
    // shape (otherwise the fuzz proves less than it claims).
    let mut depths = std::collections::HashSet::new();
    let mut pooled = false;
    let mut unpooled = false;
    let mut deep_head = false;
    let mut shallow_head = false;
    for seed in 0..40u64 {
        let arch = random_arch(seed);
        depths.insert(arch.convs.len());
        if arch.convs.iter().any(|c| c.pool_after) {
            pooled = true;
        } else {
            unpooled = true;
        }
        if arch.fcs.len() == 2 {
            deep_head = true;
        } else {
            shallow_head = true;
        }
    }
    assert!(depths.len() >= 2, "conv depth never varied");
    assert!(pooled && unpooled, "pooling never varied");
    assert!(deep_head && shallow_head, "head depth never varied");
}
