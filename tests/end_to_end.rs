//! Cross-crate integration: dataset → training → deployment → pipeline.
//!
//! These tests exercise the full BinaryCoP flow across crate boundaries at
//! miniature scale — the workspace-level counterparts of the paper's
//! system claims.

use bcp_dataset::{Dataset, GeneratorConfig, MaskClass};
use bcp_finn::perf::CLOCK_100MHZ;
use bcp_nn::Mode;
use binarycop::deploy::deploy;
use binarycop::predictor::{BinaryCoP, OperatingMode};
use binarycop::recipe::{run, tiny_arch, Recipe};
use binarycop::reference::IntegerReference;

fn small_recipe() -> Recipe {
    Recipe {
        train_per_class: 30,
        augment_copies: 0,
        test_per_class: 10,
        ..Recipe::test_scale()
    }
}

#[test]
fn train_deploy_classify_roundtrip() {
    // The headline flow: synthetic data → BNN training → threshold folding
    // → XNOR pipeline → classification, with the deployed pipeline
    // agreeing with the independent integer reference on every frame.
    let model = run(&small_recipe(), |_| {});
    assert!(
        model.test_accuracy > 0.35,
        "accuracy {}",
        model.test_accuracy
    );

    let pipeline = deploy(&model.net, &model.arch);
    let reference = IntegerReference::from_network(&model.net, &model.arch);
    let gen = GeneratorConfig {
        img_size: model.arch.input_size,
        supersample: 2,
    };
    let probe = Dataset::generate_balanced(&gen, 4, 0xBEEF);
    for i in 0..probe.len() {
        let img = probe.image(i);
        let q = bcp_finn::data::QuantMap::from_unit_floats(
            3,
            model.arch.input_size,
            model.arch.input_size,
            img.as_slice(),
        );
        assert_eq!(
            pipeline.forward(&q),
            reference.forward(&q),
            "deployed pipeline must be bit-exact (sample {i})"
        );
    }
}

#[test]
fn predictor_beats_chance_on_fresh_data() {
    let model = run(&small_recipe(), |_| {});
    let predictor = BinaryCoP::from_trained(&model.net, &model.arch);
    let gen = GeneratorConfig {
        img_size: model.arch.input_size,
        supersample: 2,
    };
    let fresh = Dataset::generate_balanced(&gen, 10, 0xF00D);
    let correct = (0..fresh.len())
        .filter(|&i| predictor.classify(&fresh.image(i)).label() == fresh.labels[i])
        .count();
    // 4-class chance is 25 %; demand clear separation.
    assert!(
        correct * 100 >= fresh.len() * 40,
        "pipeline got {correct}/{} on fresh data",
        fresh.len()
    );
}

#[test]
fn streaming_batch_equals_single_frame_classification() {
    let model = run(&small_recipe(), |_| {});
    let predictor = BinaryCoP::from_trained(&model.net, &model.arch);
    let gen = GeneratorConfig {
        img_size: model.arch.input_size,
        supersample: 2,
    };
    let ds = Dataset::generate_raw(&gen, 12, 0xCAFE);
    let images: Vec<_> = (0..ds.len()).map(|i| ds.image(i)).collect();
    let batch = predictor.classify_batch(&images);
    for (i, img) in images.iter().enumerate() {
        assert_eq!(batch[i], predictor.classify(img), "frame {i}");
    }
}

#[test]
fn training_accuracy_transfers_to_the_pipeline() {
    // The trained float network's test-set accuracy must survive
    // deployment: the pipeline's accuracy on the same test set should be
    // close (generally identical classifications).
    let model = run(&small_recipe(), |_| {});
    let mut net = model.net;
    let predictor = BinaryCoP::from_trained(&net, &model.arch);
    let test = &model.test_set;
    let mut sw = 0usize;
    let mut hw = 0usize;
    let norm = test.normalized_images();
    let logits = net.forward(&norm, Mode::Eval);
    let preds = bcp_nn::metrics::predictions(&logits);
    #[allow(clippy::needless_range_loop)]
    for i in 0..test.len() {
        if preds[i] == test.labels[i] {
            sw += 1;
        }
        if predictor.classify(&test.image(i)).label() == test.labels[i] {
            hw += 1;
        }
    }
    let diff = sw.abs_diff(hw);
    assert!(
        diff * 20 <= test.len(),
        "deployment accuracy drop too large: sw {sw} vs hw {hw} of {}",
        test.len()
    );
}

#[test]
fn perf_and_power_models_are_consistent_across_modes() {
    let model = run(&small_recipe(), |_| {});
    let predictor = BinaryCoP::from_trained(&model.net, &model.arch);
    let perf = predictor.perf();
    // The timing model's per-frame capacity bounds the gate duty cycle.
    let gate = predictor.board_power_w(OperatingMode::SingleGate {
        subjects_per_s: 1.0,
    });
    let crowd = predictor.board_power_w(OperatingMode::CrowdStatistics);
    assert!(gate >= 1.6 && gate < crowd);
    // Batch time for N frames at full rate beats N sequential latencies.
    let n = 100;
    let batched = perf.batch_seconds(n, &CLOCK_100MHZ);
    let sequential = n as f64 * perf.latency_us * 1e-6;
    assert!(
        batched < sequential,
        "pipelining must amortize: {batched} vs {sequential}"
    );
}

#[test]
fn checkpoint_roundtrip_preserves_deployment() {
    // Save → load through bcp-nn's JSON state dict, then deploy both and
    // compare pipelines on frames.
    let model = run(&small_recipe(), |_| {});
    let mut original = model.net;
    let sd = bcp_nn::serialize::state_dict(&mut original);
    let mut restored = binarycop::model::build_bnn(&model.arch, 12345);
    bcp_nn::serialize::load_state_dict(&mut restored, &sd);

    let p1 = deploy(&original, &model.arch);
    let p2 = deploy(&restored, &model.arch);
    let gen = GeneratorConfig {
        img_size: model.arch.input_size,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, 2, 0xD00D);
    for i in 0..ds.len() {
        let img = ds.image(i);
        let q = bcp_finn::data::QuantMap::from_unit_floats(
            3,
            model.arch.input_size,
            model.arch.input_size,
            img.as_slice(),
        );
        assert_eq!(p1.forward(&q), p2.forward(&q), "checkpoint must round-trip");
    }
}

#[test]
fn tiny_arch_deploys_with_exact_foldings() {
    let arch = tiny_arch();
    for (i, d) in arch.layer_dims().iter().enumerate() {
        assert!(arch.folding(i).is_exact(d.rows, d.cols), "layer {}", d.name);
    }
}

#[test]
fn all_four_classes_reachable_by_pipeline() {
    // Sanity against degenerate collapse: across many inputs, a trained
    // pipeline emits more than one class, and the generator covers all 4.
    let model = run(&small_recipe(), |_| {});
    let predictor = BinaryCoP::from_trained(&model.net, &model.arch);
    let gen = GeneratorConfig {
        img_size: model.arch.input_size,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, 8, 0xABCD);
    let mut seen = std::collections::HashSet::new();
    for i in 0..ds.len() {
        seen.insert(predictor.classify(&ds.image(i)));
    }
    assert!(seen.len() >= 3, "pipeline collapsed to {seen:?}");
    let truth: std::collections::HashSet<MaskClass> = ds
        .labels
        .iter()
        .map(|&l| MaskClass::from_label(l))
        .collect();
    assert_eq!(truth.len(), 4);
}
