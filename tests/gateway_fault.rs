//! Shard failure under concurrent client load: kill one engine behind the
//! gateway while eight TCP clients hammer it, and the front door must hold
//! the exactly-one-response contract — every request resolves, no answer is
//! wrong, the killed shard leaves the rotation, and after revival it
//! rejoins within a bounded probe window. The client-side tallies must
//! reconcile *exactly* with the server's `gateway.*`/`serve.*` counters;
//! an off-by-one here is a lost or double-counted response.

#![allow(clippy::arithmetic_side_effects)]

use bcp_gateway::{Gateway, GatewayClient, GatewayConfig, ShardSpec, ShardState, Status, Tally};
use bcp_serve::{canary_frame, Replica, ServeConfig, SyntheticReplica};
use bcp_telemetry::Registry;
use bcp_tensor::Tensor;
use std::time::Duration;

const SHARDS: usize = 3;
const CLIENTS: usize = 8;
const REQUESTS: usize = 60;
const PROBE: Duration = Duration::from_millis(20);

fn frames() -> Vec<Tensor> {
    (0..6).map(|i| canary_frame(3, 8 + i % 3, 8)).collect()
}

fn expected_classes(frames: &[Tensor]) -> Vec<u8> {
    let mut reference = SyntheticReplica::new();
    frames
        .iter()
        .map(|f| reference.infer_batch(std::slice::from_ref(f))[0].label() as u8)
        .collect()
}

/// A tenant whose first-preference shard is `shard`, so its load (or the
/// recovery burst) provably exercises that shard.
fn tenant_with_affinity(gw: &Gateway, shard: usize) -> u32 {
    (0u32..100_000)
        .find(|&t| gw.router().preference(t).first() == Some(&shard))
        .expect("some tenant hashes to every shard")
}

#[test]
fn shard_kill_under_load_loses_nothing_and_books_balance() {
    let registry = Registry::new();
    let specs = (0..SHARDS)
        .map(|_| ShardSpec::synthetic(2, ServeConfig::default()))
        .collect();
    let cfg = GatewayConfig {
        probe_interval: PROBE,
        ..GatewayConfig::default()
    };
    let gw = Gateway::start(specs, cfg, Some(registry.clone())).expect("bind");
    let frames = frames();
    let expect = expected_classes(&frames);

    // Spread client affinity across all shards so the kill target is
    // guaranteed to carry live traffic when it dies.
    let tenants: Vec<u32> = (0..CLIENTS)
        .map(|i| tenant_with_affinity(&gw, i % SHARDS))
        .collect();
    let victim = 1usize;

    let merged = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let tenant = tenants[i];
                let addr = gw.local_addr();
                let frames = &frames;
                let expect = &expect;
                s.spawn(move || {
                    let mut client = GatewayClient::connect(addr).expect("connect");
                    let mut tally = Tally::default();
                    for r in 0..REQUESTS {
                        let k = r % frames.len();
                        let id = ((i as u64) << 32) | r as u64;
                        match client.classify(tenant, id, 5_000, &frames[k]) {
                            Ok(resp) => {
                                assert_eq!(resp.request_id, id, "response routed to wrong request");
                                tally.record(&resp, Some(expect[k]));
                            }
                            Err(_) => tally.record_wire_error(),
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    tally
                })
            })
            .collect();

        // Kill the victim mid-run, revive it while load continues.
        std::thread::sleep(Duration::from_millis(15));
        gw.router().shards()[victim].kill();
        assert_eq!(gw.router().shards()[victim].state(), ShardState::Down);
        std::thread::sleep(Duration::from_millis(25));
        gw.router().shards()[victim].revive();

        let mut merged = Tally::default();
        for h in handles {
            merged.merge(&h.join().expect("client thread"));
        }
        merged
    });

    // Every request resolved exactly once, nothing died on the wire, and
    // no Ok carried a wrong class — through a kill *and* a revive.
    let total = (CLIENTS * REQUESTS) as u64;
    assert_eq!(merged.responses(), total, "lost or duplicated responses");
    assert_eq!(merged.wire_errors, 0, "clients saw connection failures");
    assert_eq!(merged.wrong, 0, "a failover produced a wrong answer");
    assert_eq!(
        merged.count(Status::Ok),
        total,
        "non-Ok outcomes: {merged:?}"
    );

    // Rebalance, bounded window: after 4 probe intervals the revived
    // shard must answer its affinity tenant again.
    std::thread::sleep(PROBE * 4);
    let burst_tenant = tenant_with_affinity(&gw, victim);
    let mut client = GatewayClient::connect(gw.local_addr()).expect("connect");
    let mut burst = Tally::default();
    let mut burst_shards = Vec::new();
    for (k, frame) in frames.iter().enumerate() {
        let resp = client
            .classify(burst_tenant, 0xB000 + k as u64, 5_000, frame)
            .expect("burst");
        burst_shards.push(resp.shard as usize);
        burst.record(&resp, Some(expect[k]));
    }
    assert_eq!(burst.count(Status::Ok), frames.len() as u64);
    assert_eq!(burst.wrong, 0);
    assert!(
        burst_shards.contains(&victim),
        "revived shard {victim} never rejoined the rotation: {burst_shards:?}"
    );

    // Quiesce, then audit the books: client-side tallies must reconcile
    // exactly with the gateway's own ledger and the engines' serve.*.
    gw.shutdown();
    let snap = registry.snapshot();
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let sent = total + frames.len() as u64;
    assert_eq!(count("gateway.frames"), sent, "decoded frames");
    assert_eq!(
        count("gateway.frames"),
        count("gateway.responses"),
        "exactly-one-response broken"
    );
    let client_ok = merged.count(Status::Ok) + burst.count(Status::Ok);
    assert_eq!(count("gateway.status.ok"), client_ok, "status ledger");
    for status in Status::ALL {
        if status == Status::Ok {
            continue;
        }
        assert_eq!(
            count(&format!("gateway.status.{}", status.name())),
            merged.count(status) + burst.count(status),
            "ledger mismatch for {}",
            status.name()
        );
    }
    // Engines and shards agree (both sides include health probes).
    let shard_ok: u64 = (0..SHARDS)
        .map(|i| count(&format!("gateway.shard.{i}.ok")))
        .sum();
    assert_eq!(count("serve.ok"), shard_ok, "serve ledger");
    assert_eq!(count(&format!("gateway.shard.{victim}.killed")), 1);
    assert_eq!(count(&format!("gateway.shard.{victim}.revived")), 1);
    // The kill rerouted real work: the survivors carried more than an
    // even share while the victim was down.
    let victim_ok = count(&format!("gateway.shard.{victim}.ok"));
    assert!(
        shard_ok - victim_ok > victim_ok,
        "survivors should out-serve the once-dead shard: victim {victim_ok} of {shard_ok}"
    );
}
