//! Integrity-guard guarantees, pinned end to end:
//!
//! 1. **Detection certainty** — CRC-32 per packed weight row has Hamming
//!    distance ≥ 4 below 91,607 data bits, and no row in any BinaryCoP
//!    architecture comes near that. So detection of 1-, 2- and short-burst
//!    flips within a row is not probabilistic, it is certain; the
//!    proptests here (and one exhaustive all-pairs sweep) pin exactly
//!    that: every such corruption is detected AND localized to its
//!    (stage, row), and the scrubber's repair is bit-exact.
//! 2. **Self-healing serving** — a guarded worker pool hit by repeated
//!    fault injection must quarantine at the canary gate, repair from the
//!    golden copy off the hot path, re-earn rotation through probation,
//!    and never deliver an incorrect `Ok`. Response accounting is exact:
//!    every client-observed outcome reconciles against the engine's own
//!    counters.
//!
//! Case count honors `PROPTEST_CASES` (CI sets 64); seeds are fixed per
//! test name, so failures replay deterministically.

use bcp_finn::fault::{apply_burst, try_apply_fault, FaultRecord};
use bcp_finn::{GoldenDigest, IntegrityFault, Pipeline};
use bcp_guard::Scrubber;
use bcp_nn::Mode;
use bcp_serve::{RecoveryPolicy, ServeConfig, ServeError, WorkerState};
use bcp_tensor::Shape;
use binarycop::guard::guarded_engine;
use binarycop::model::build_bnn;
use binarycop::recipe::tiny_arch;
use binarycop::BinaryCoP;
use proptest::prelude::*;
use std::sync::OnceLock;

fn predictor() -> &'static BinaryCoP {
    static P: OnceLock<BinaryCoP> = OnceLock::new();
    P.get_or_init(|| {
        let arch = tiny_arch();
        let mut net = build_bnn(&arch, 5);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
        let _ = net.forward(&x, Mode::Train);
        BinaryCoP::from_trained(&net, &arch)
    })
}

/// (stage index, rows, cols) for every stage that owns a weight memory.
fn weight_stages(p: &Pipeline) -> Vec<(usize, usize, usize)> {
    (0..p.stages().len())
        .filter_map(|s| {
            p.stages()[s]
                .weight_matrix()
                .map(|m| (s, m.rows(), m.cols()))
        })
        .collect()
}

proptest! {
    /// Any single flipped weight bit is detected and localized to exactly
    /// its (stage, row), and one repair pass restores a clean digest.
    #[test]
    fn single_bit_flips_are_detected_localized_and_repaired(
        si in any::<usize>(),
        ri in any::<usize>(),
        ci in any::<usize>(),
    ) {
        let mut p = predictor().pipeline().clone();
        let digest = GoldenDigest::capture(&p);
        let mut scrubber = Scrubber::new(&p);
        let stages = weight_stages(&p);
        let (stage, rows, cols) = stages[si % stages.len()];
        let fault = FaultRecord { stage, row: ri % rows, col: ci % cols };
        try_apply_fault(&mut p, fault).unwrap();

        let found = digest.verify(&p);
        prop_assert_eq!(
            found,
            vec![IntegrityFault::WeightRow { stage, row: fault.row }],
            "one flip must localize to exactly its row"
        );
        let report = scrubber.full_sweep(&mut p);
        prop_assert_eq!(report.faults_detected, 1);
        prop_assert_eq!(report.faults_repaired, 1);
        prop_assert_eq!(report.bits_flipped, 1);
        prop_assert!(digest.verify(&p).is_empty(), "repair must be bit-exact");
    }

    /// Any 2-bit corruption within one row is detected (random sample;
    /// the exhaustive all-pairs sweep below covers a full row per stage).
    #[test]
    fn random_two_bit_flips_within_a_row_are_detected(
        si in any::<usize>(),
        ri in any::<usize>(),
        c1 in any::<usize>(),
        c2 in any::<usize>(),
    ) {
        let mut p = predictor().pipeline().clone();
        let digest = GoldenDigest::capture(&p);
        let stages = weight_stages(&p);
        let (stage, rows, cols) = stages[si % stages.len()];
        let row = ri % rows;
        let (a, b) = (c1 % cols, c2 % cols);
        prop_assume!(a != b);
        try_apply_fault(&mut p, FaultRecord { stage, row, col: a }).unwrap();
        try_apply_fault(&mut p, FaultRecord { stage, row, col: b }).unwrap();
        prop_assert!(
            !digest.verify_row(&p, stage, row),
            "2-bit flip in row went undetected"
        );
    }

    /// Multi-bit upsets (adjacent bursts, the MBU model of
    /// `apply_burst`) are detected for every burst width CRC-32
    /// guarantees — far beyond the 2–4 adjacent cells real MBUs hit.
    #[test]
    fn bursts_are_detected(
        si in any::<usize>(),
        ri in any::<usize>(),
        ci in any::<usize>(),
        k in 1usize..17,
    ) {
        let mut p = predictor().pipeline().clone();
        let digest = GoldenDigest::capture(&p);
        let stages = weight_stages(&p);
        let (stage, rows, cols) = stages[si % stages.len()];
        let row = ri % rows;
        let records = apply_burst(&mut p, stage, row, ci % cols, k).unwrap();
        prop_assert!(!records.is_empty());
        prop_assert!(
            !digest.verify_row(&p, stage, row),
            "{}-bit burst went undetected",
            records.len()
        );
    }
}

/// Exhaustive, not sampled: for one row of every weight stage, *all*
/// C(cols, 2) two-bit corruptions are detected. With CRC-32's Hamming
/// distance this must be 100%, and this sweep proves it rather than
/// asserting it.
#[test]
fn all_two_bit_flips_within_a_row_are_detected_exhaustively() {
    let mut p = predictor().pipeline().clone();
    let digest = GoldenDigest::capture(&p);
    let mut pairs = 0usize;
    for (stage, rows, cols) in weight_stages(&p) {
        let row = rows / 2;
        for a in 0..cols {
            for b in (a + 1)..cols {
                try_apply_fault(&mut p, FaultRecord { stage, row, col: a }).unwrap();
                try_apply_fault(&mut p, FaultRecord { stage, row, col: b }).unwrap();
                assert!(
                    !digest.verify_row(&p, stage, row),
                    "undetected 2-bit flip at stage {stage} row {row} cols ({a},{b})"
                );
                // Flips are involutive: undo to keep the next pair clean.
                try_apply_fault(&mut p, FaultRecord { stage, row, col: a }).unwrap();
                try_apply_fault(&mut p, FaultRecord { stage, row, col: b }).unwrap();
                pairs += 1;
            }
        }
    }
    assert!(
        digest.verify(&p).is_empty(),
        "sweep must leave memory clean"
    );
    assert!(pairs > 0);
    println!("verified {pairs} two-bit corruption patterns");
}

/// The end-to-end recovery story: a guarded pool under concurrent client
/// traffic takes repeated fault storms on worker 0, and
///
/// * no client ever receives an incorrect `Ok` — every success matches
///   the clean model, every failure is an explicit `ServeError`;
/// * the wounded worker walks Quarantined → Probation → Healthy each
///   time (counted by `serve.worker.repaired` / `.reinstated`);
/// * accounting is exact — client-observed outcomes reconcile with the
///   engine's own `serve.*` counters, nothing lost or duplicated.
#[test]
fn serve_pool_heals_under_fire_and_never_lies() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    let registry = bcp_telemetry::Registry::new();
    let p = predictor().clone().with_telemetry(registry.clone());
    let cfg = ServeConfig {
        max_batch: 1,
        recovery: Some(RecoveryPolicy {
            probation_passes: 2,
            max_strikes: 100, // storms below must never exhaust the strike budget
            retry_interval: Duration::from_millis(1),
        }),
        background_scrub: Some(4),
        ..ServeConfig::default()
    };
    let e = guarded_engine(&p, 2, cfg);

    let gen = bcp_dataset::GeneratorConfig {
        img_size: 16,
        supersample: 2,
    };
    let ds = bcp_dataset::Dataset::generate_balanced(&gen, 2, 0xFA17);
    let frames: Vec<bcp_tensor::Tensor> = (0..ds.len()).map(|i| ds.image(i)).collect();
    let expected: Vec<_> = frames.iter().map(|f| p.classify(f)).collect();

    // The canary gate can only catch fault plans that actually perturb
    // the canary output (canary-invisible corruption is what background
    // scrubbing is for — but this test is about the *gated* path, so pin
    // that precondition per storm, as serve_fault.rs does for its plan).
    const STORMS: usize = 3;
    let golden = bcp_serve::Replica::canary(&p, &bcp_serve::canary_frame(3, 16, 16));
    let p_filter = p.clone();
    let mut seed_pool = (0u64..)
        .filter(move |&seed| {
            let mut q = p_filter.clone();
            bcp_serve::Replica::inject_faults(&mut q, 8, 0xC0FFEE + seed);
            bcp_serve::Replica::canary(&q, &bcp_serve::canary_frame(3, 16, 16)) != golden
        })
        .map(|seed| 0xC0FFEE + seed);
    let storm_seeds: Vec<u64> = seed_pool.by_ref().take(STORMS).collect();

    let ok_seen = AtomicUsize::new(0);
    let fault_seen = AtomicUsize::new(0);
    let submitted = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // Client load: 4 threads, fixed request budget each.
        for t in 0..4 {
            let (e, frames, expected) = (&e, &frames, &expected);
            let (ok_seen, fault_seen, submitted) = (&ok_seen, &fault_seen, &submitted);
            s.spawn(move || {
                for i in 0..120 {
                    let j = (t + i) % frames.len();
                    submitted.fetch_add(1, Ordering::Relaxed);
                    match e.classify(&frames[j]) {
                        Ok(got) => {
                            assert_eq!(got, expected[j], "incorrect Ok delivered");
                            ok_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::WorkerFault { .. }) => {
                            fault_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }

        // Chaos: repeated fault storms on worker 0, each waiting for the
        // full quarantine → repair → probation → healthy round trip.
        let scrub_repaired = |registry: &bcp_telemetry::Registry| {
            registry
                .snapshot()
                .counters
                .get("guard.scrub.faults_repaired")
                .copied()
                .unwrap_or(0)
        };
        for (storm, &seed) in storm_seeds.iter().enumerate() {
            e.inject_faults(0, 8, seed);
            let deadline = Instant::now() + Duration::from_secs(10);
            // The storm is only visible once the canary gate trips; wait
            // for departure from Healthy, then for the full recovery.
            // The background scrubber legitimately races the gate: if it
            // silently repairs the injection first (healing is healing),
            // the gate never trips — detect that via the scrub counter
            // and re-arm with a fresh canary-visible fault plan so this
            // test still exercises the *gated* path every storm.
            let mut repaired_seen = scrub_repaired(&registry);
            while e.worker_state(0) == WorkerState::Healthy && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
                let r = scrub_repaired(&registry);
                if r > repaired_seen && e.worker_state(0) == WorkerState::Healthy {
                    repaired_seen = r;
                    e.inject_faults(0, 8, seed_pool.next().unwrap());
                }
            }
            while e.worker_state(0) != WorkerState::Healthy && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(
                e.worker_state(0),
                WorkerState::Healthy,
                "worker 0 failed to heal from storm {storm}"
            );
        }
    });

    // Reconcile client-side tallies against the engine's own books.
    let snap = registry.snapshot();
    let (ok, faulted, total) = (
        ok_seen.load(Ordering::Relaxed) as u64,
        fault_seen.load(Ordering::Relaxed) as u64,
        submitted.load(Ordering::Relaxed) as u64,
    );
    assert_eq!(total, 4 * 120);
    assert_eq!(ok + faulted, total, "every request resolved exactly once");
    assert_eq!(snap.counters["serve.requests"], total);
    assert_eq!(snap.counters["serve.ok"], ok);
    assert_eq!(snap.counters["serve.failed"], faulted);
    assert!(
        snap.counters["serve.worker.repaired"] >= STORMS as u64,
        "each storm repairs at least once"
    );
    assert_eq!(
        snap.counters["serve.worker.repaired"], snap.counters["serve.worker.reinstated"],
        "every repair must complete probation (strike budget is ample)"
    );
    assert_eq!(
        snap.counters
            .get("serve.worker.retired")
            .copied()
            .unwrap_or(0),
        0
    );
    assert!(faulted > 0, "storms must actually fault some requests");
    e.shutdown();
    assert_eq!(e.worker_states(), vec![WorkerState::Healthy; 2]);
}
