//! Cross-crate I/O round-trips: the PPM writer (`bcp-gradcam::render`),
//! the PPM reader (`bcp-dataset::ppm`), the figure-artifact writer and the
//! deployment CLI's preprocessing must all agree on the image format.

use bcp_dataset::generator::{generate_sample, GeneratorConfig};
use bcp_dataset::ppm::{decode_ppm, resize_to};
use bcp_dataset::MaskClass;
use bcp_gradcam::render::image_ppm;
use bcp_nn::{Mode, Sequential};
use binarycop::experiments::{figure_rows, gradcam_figure_ppms};

#[test]
fn generated_face_survives_ppm_roundtrip() {
    let cfg = GeneratorConfig::default();
    for (i, class) in MaskClass::ALL.into_iter().enumerate() {
        let (img, _) = generate_sample(&cfg, class, 100 + i as u64);
        let bytes = image_ppm(&img);
        let back = decode_ppm(&bytes).expect("own PPM output must parse");
        assert_eq!(back, img, "PPM round-trip must be lossless on the u8 grid");
    }
}

#[test]
fn resized_camera_frame_feeds_the_predictor() {
    // A 96×96 "camera" frame of a generated face, resized by the CLI path
    // to 32×32, must classify without panicking and deterministically.
    let big_cfg = GeneratorConfig {
        img_size: 96,
        supersample: 1,
    };
    let (frame, _) = generate_sample(&big_cfg, MaskClass::NoseExposed, 7);
    let bytes = image_ppm(&frame);
    let decoded = decode_ppm(&bytes).unwrap();
    let sized = resize_to(&decoded, 32);
    assert_eq!(sized.shape().dims(), &[3, 32, 32]);

    let arch = binarycop::arch::ArchKind::MicroCnv.arch();
    let mut net = binarycop::model::build_bnn(&arch, 1);
    let x = bcp_tensor::init::uniform(bcp_tensor::Shape::nchw(2, 3, 32, 32), -1.0, 1.0, 2);
    let _ = net.forward(&x, Mode::Train);
    let predictor = binarycop::BinaryCoP::from_trained(&net, &arch);
    let a = predictor.classify(&sized);
    let b = predictor.classify(&sized);
    assert_eq!(a, b);
}

#[test]
fn figure_ppm_artifacts_are_valid_ppm_files() {
    let arch = binarycop::recipe::tiny_arch();
    let mut net = binarycop::model::build_bnn(&arch, 3);
    let x = bcp_tensor::init::uniform(bcp_tensor::Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 4);
    let _ = net.forward(&x, Mode::Train);
    let dir = std::env::temp_dir().join("bcp_io_roundtrip_figs");
    let mut models: Vec<(&str, &mut Sequential, &str)> = vec![("tiny", &mut net, "conv3")];
    let files = gradcam_figure_ppms(5, 16, 9, &mut models, &dir).expect("artifact writing");
    // 3 rows × (raw + 1 model overlay) = 6 files.
    assert_eq!(files.len(), 6);
    for f in &files {
        let bytes = std::fs::read(f).unwrap();
        let img = decode_ppm(&bytes).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        assert_eq!(img.shape().dims(), &[3, 16, 16]);
        std::fs::remove_file(f).ok();
    }
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn figure_inputs_match_their_declared_classes_geometrically() {
    // Every Grad-CAM figure row's rendered image is regenerable and its
    // declared class is one of the four; the mask geometry consistency is
    // enforced inside figure_rows (it asserts coverage), so reaching here
    // means all 7 figures passed it at this size too.
    for fig in 3..=9u8 {
        let (_, rows) = figure_rows(fig, 16, 21);
        for row in rows {
            assert!(MaskClass::ALL.contains(&row.class));
            assert_eq!(row.image.shape().dims(), &[3, 16, 16]);
        }
    }
}
