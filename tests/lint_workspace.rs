//! The repo lints itself: `bcp lint` must be clean on the workspace.
//!
//! This is the same pass CI runs via `bcp lint --root .` — having it as
//! a plain integration test means `cargo test` alone catches a new
//! unjustified `Ordering`, stray `unsafe`, hot-path channel `unwrap()`
//! or undocumented metric before the CI job does.

use bcp_check::lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_passes_its_own_lint_pass() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root);
    assert!(
        report.is_clean(),
        "bcp lint found violations:\n{}",
        report.render_text()
    );
}

#[test]
fn lint_pass_actually_scanned_the_tree() {
    // Guard against the pass silently matching nothing: the README must
    // yield metric patterns and the walker must see the known unsafe
    // allowlist file. We prove both indirectly by linting a synthetic
    // sibling tree and the real one.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root);
    // A run that failed to read README/crates would carry BCP110.
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code == bcp_check::Code::LintConfigError),
        "lint pass reported configuration errors:\n{}",
        report.render_text()
    );
}
