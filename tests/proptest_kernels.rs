//! Property-based differential tests for the two kernels the whole
//! accelerator rests on, each checked against an independent reference
//! implementation:
//!
//! 1. The bitpacked XNOR-popcount GEMM (`bcp_bitpack::xnor_gemm`) against
//!    a naive float matmul over the same ±1 matrices (`bcp_tensor`).
//!    PopCnt(XNOR) over packed words and a dot product over ±1 floats are
//!    wildly different code paths that must agree exactly — ±1 integer
//!    dot products are exactly representable in `f32` far beyond any `k`
//!    used here, so the comparison is equality, not tolerance.
//! 2. The folded integer thresholds (`from_batchnorm`) against the
//!    float batch-norm + sign reference they were folded from, over the
//!    accumulator's entire legal range (paper Eq. 1 / Sec. III-B).
//! 3. The register-blocked multi-frame GEMM (`xnor_gemm_block`) against
//!    *both* the float reference and the single-frame kernel, over random
//!    shapes and batch sizes spanning 1..=2·BLOCK_LANES — the interleaved
//!    bit-plane layout, the 4-wide unroll, and both ragged tails (frames
//!    off the register-block grid, fan-ins off the 64-lane grid) must
//!    never change a single accumulator bit. The fused-threshold variant
//!    is additionally pinned to the unfused compare over the accumulator's
//!    full legal range.
//!
//! Case count honors `PROPTEST_CASES` (CI sets 64); seeds are fixed per
//! test name, so failures replay deterministically.

use bcp_bitpack::pack::pack_matrix;
use bcp_bitpack::threshold::{batchnorm_sign_reference, ThresholdChannel, ThresholdUnit};
use bcp_bitpack::xnor::{xnor_gemm, xnor_matvec};
use bcp_bitpack::{xnor_gemm_block, xnor_gemm_block_thresholded, BitPlaneBlock, BLOCK_LANES};
use bcp_tensor::{matmul::matmul_tb, Shape, Tensor};
use proptest::prelude::*;

/// Deterministic ±1 matrix from a seed (LCG; independent of any crate's
/// RNG so the test doesn't share code with either implementation).
fn signs(rows: usize, cols: usize, mut seed: u64) -> Vec<f32> {
    (0..rows * cols)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (seed >> 33) & 1 == 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn xnor_gemm_matches_float_matmul(
        m in 1usize..9,
        n in 1usize..9,
        k in 1usize..260,
        seed in any::<u64>(),
    ) {
        let a = signs(m, k, seed);
        let b = signs(n, k, seed ^ 0x9E3779B97F4A7C15);
        // Bit domain: pack and popcount-multiply.
        let bits = xnor_gemm(&pack_matrix(m, k, &a), &pack_matrix(n, k, &b));
        // Float domain: dense A·Bᵀ.
        let floats = matmul_tb(
            &Tensor::from_vec(Shape::d2(m, k), a),
            &Tensor::from_vec(Shape::d2(n, k), b),
        );
        prop_assert_eq!(bits.len(), m * n);
        for (i, (&got, &want)) in bits.iter().zip(floats.as_slice()).enumerate() {
            prop_assert_eq!(got as f32, want, "accumulator {} of {}x{}·{}ᵀ", i, m, k, n);
        }
    }

    #[test]
    fn xnor_gemm_bounds_and_parity(
        m in 1usize..5,
        n in 1usize..5,
        k in 1usize..300,
        seed in any::<u64>(),
    ) {
        // Structural invariants independent of the reference: every ±1 dot
        // product over k terms lies in [-k, k] and has k's parity.
        let a = pack_matrix(m, k, &signs(m, k, seed));
        let b = pack_matrix(n, k, &signs(n, k, seed.wrapping_add(7)));
        for acc in xnor_gemm(&a, &b) {
            prop_assert!(acc.unsigned_abs() as usize <= k);
            prop_assert_eq!((acc - k as i32).rem_euclid(2), 0);
        }
    }

    #[test]
    fn blocked_gemm_matches_float_reference_and_single_frame_kernel(
        rows in 1usize..9,
        k in 1usize..260,
        b in 1usize..2 * BLOCK_LANES + 1,
        seed in any::<u64>(),
    ) {
        let w_raw = signs(rows, k, seed);
        let f_raw = signs(b, k, seed ^ 0x9E3779B97F4A7C15);
        let weights = pack_matrix(rows, k, &w_raw);
        let frame_mat = pack_matrix(b, k, &f_raw);
        let frames: Vec<_> = (0..b).map(|f| frame_mat.row(f)).collect();

        // Blocked kernel, out[r·b + f].
        let blocked = xnor_gemm_block(&weights, &BitPlaneBlock::pack(&frames));
        prop_assert_eq!(blocked.len(), rows * b);

        // Reference 1: the float matmul W·Fᵀ (same layout: [r·b + f]).
        let floats = matmul_tb(
            &Tensor::from_vec(Shape::d2(rows, k), w_raw),
            &Tensor::from_vec(Shape::d2(b, k), f_raw),
        );
        for (i, (&got, &want)) in blocked.iter().zip(floats.as_slice()).enumerate() {
            prop_assert_eq!(got as f32, want, "accumulator {} of {}x{} @ B={}", i, rows, k, b);
        }

        // Reference 2: the single-frame kernel, one matvec per frame.
        for (f, frame) in frames.iter().enumerate() {
            let single = xnor_matvec(&weights, frame);
            for (r, &want) in single.iter().enumerate() {
                prop_assert_eq!(blocked[r * b + f], want, "frame {} row {}", f, r);
            }
        }
    }

    #[test]
    fn blocked_fused_threshold_matches_unfused_over_full_accumulator_range(
        rows in 1usize..8,
        k in 1usize..200,
        b in 1usize..2 * BLOCK_LANES + 1,
        seed in any::<u64>(),
        gamma in -4.0f64..4.0,
        beta in -4.0f64..4.0,
        mean in -40.0f64..40.0,
        var in 0.0f64..9.0,
    ) {
        let eps = 1e-5f64;
        // A mixed bank: batch-norm-folded channels interleaved with raw
        // Ge/Le/Const channels whose τ sweeps the accumulator's full legal
        // range [-k, k] (including both boundaries), so every comparison
        // direction is exercised at and around equality.
        let channels: Vec<ThresholdChannel> = (0..rows)
            .map(|r| match r % 4 {
                0 => ThresholdChannel::from_batchnorm(gamma, beta, mean, var, eps),
                1 => ThresholdChannel::Ge(-(k as i64) + (r as i64 * 2) % (2 * k as i64 + 1)),
                2 => ThresholdChannel::Le((k as i64) - (r as i64 * 3) % (2 * k as i64 + 1)),
                _ => ThresholdChannel::Const(r % 8 < 4),
            })
            .collect();
        let bank = ThresholdUnit::new(channels);

        let weights = pack_matrix(rows, k, &signs(rows, k, seed));
        let frame_mat = pack_matrix(b, k, &signs(b, k, seed ^ 0xD1B54A32D192ED03));
        let frames: Vec<_> = (0..b).map(|f| frame_mat.row(f)).collect();
        let block = BitPlaneBlock::pack(&frames);

        let fused = xnor_gemm_block_thresholded(&weights, &block, &bank);
        let accs = xnor_gemm_block(&weights, &block);
        prop_assert_eq!(fused.len(), b);
        for (f, out) in fused.iter().enumerate() {
            prop_assert_eq!(out.len(), rows);
            for r in 0..rows {
                let acc = accs[r * b + f] as i64;
                // The accumulator must be legal...
                prop_assert!(acc.unsigned_abs() as usize <= k);
                // ...and the fused bit must equal the unfused compare.
                prop_assert_eq!(
                    out.get(r),
                    bank.apply(r, acc),
                    "frame {} row {} acc {}", f, r, acc
                );
            }
        }
    }

    #[test]
    fn folded_channel_matches_float_batchnorm_sign(
        gamma in -4.0f64..4.0,
        beta in -4.0f64..4.0,
        mean in -40.0f64..40.0,
        var in 0.0f64..9.0,
        k in 1usize..200,
    ) {
        let eps = 1e-5f64;
        let t = ThresholdChannel::from_batchnorm(gamma, beta, mean, var, eps);
        // Exhaust the whole legal accumulator range for a k-term ±1 dot
        // product, not a sample of it.
        for acc in -(k as i64)..=(k as i64) {
            prop_assert_eq!(
                t.apply(acc),
                batchnorm_sign_reference(acc, gamma, beta, mean, var, eps),
                "acc {} under γ={} β={} μ={} σ²={}", acc, gamma, beta, mean, var
            );
        }
    }

    #[test]
    fn folded_unit_matches_reference_per_channel(
        channels in 1usize..17,
        seed in any::<u64>(),
        k in 1usize..150,
    ) {
        // f32 statistics (the deploy path's type) against the f64 reference.
        let raw = signs(4, channels, seed);
        let gamma: Vec<f32> = (0..channels).map(|c| raw[c] * (c as f32 * 0.37 + 0.1)).collect();
        let beta: Vec<f32> = (0..channels).map(|c| raw[channels + c] * (c as f32 * 0.21)).collect();
        let mean: Vec<f32> = (0..channels).map(|c| raw[2 * channels + c] * (c as f32 * 1.7)).collect();
        let var: Vec<f32> = (0..channels).map(|c| 0.05 + c as f32 * 0.33).collect();
        let eps = 1e-5f32;
        let unit = ThresholdUnit::from_batchnorm(&gamma, &beta, &mean, &var, eps);
        for c in 0..channels {
            for acc in [-(k as i64), -1, 0, 1, k as i64] {
                prop_assert_eq!(
                    unit.apply(c, acc),
                    batchnorm_sign_reference(
                        acc,
                        gamma[c] as f64,
                        beta[c] as f64,
                        mean[c] as f64,
                        var[c] as f64,
                        eps as f64,
                    ),
                    "channel {} acc {}", c, acc
                );
            }
        }
    }
}

#[test]
fn gemm_differential_has_a_known_answer_anchor() {
    // One hand-checked case pins both implementations to ground truth, so
    // the property above cannot pass by both being wrong the same way:
    // a = [+1 -1 +1], b = [+1 +1 +1] → dot = +1.
    let a = pack_matrix(1, 3, &[1.0, -1.0, 1.0]);
    let b = pack_matrix(1, 3, &[1.0, 1.0, 1.0]);
    assert_eq!(xnor_gemm(&a, &b), vec![1]);
}

#[test]
fn blocked_gemm_has_a_known_answer_anchor() {
    // Hand-checked multi-frame case: weight row [+1 -1 +1] against frames
    // [+1 +1 +1] → +1, [-1 -1 -1] → -1, [+1 -1 +1] → +3 (self), and
    // [-1 +1 -1] → -3 (complement). Five frames force a ragged second
    // register block.
    let w = pack_matrix(1, 3, &[1.0, -1.0, 1.0]);
    let f = pack_matrix(
        5,
        3,
        &[
            1.0, 1.0, 1.0, //
            -1.0, -1.0, -1.0, //
            1.0, -1.0, 1.0, //
            -1.0, 1.0, -1.0, //
            1.0, 1.0, -1.0,
        ],
    );
    let frames: Vec<_> = (0..5).map(|i| f.row(i)).collect();
    let got = xnor_gemm_block(&w, &BitPlaneBlock::pack(&frames));
    assert_eq!(got, vec![1, -1, 3, -3, -1]);
}
