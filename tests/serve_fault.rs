//! Fault injection against the serving engine: stuck-at faults from
//! `bcp_finn::fault` land in one worker's replica, and the engine must
//! contain the blast radius — the corrupted worker fails *detectably*
//! (per-request `WorkerFault` errors, never a silently wrong class) while
//! healthy workers keep serving correct answers.
//!
//! Determinism comes from the engine's design: dispatch is round-robin
//! over per-worker queues starting at worker 0, and with `canary_every: 1`
//! every batch is preceded by a golden-output check, so a fault injected
//! before the first request is caught on exactly that request.

use bcp_dataset::{Dataset, GeneratorConfig};
use bcp_nn::Mode;
use bcp_serve::{Replica, ServeConfig, ServeError};
use bcp_tensor::{Shape, Tensor};
use binarycop::model::build_bnn;
use binarycop::recipe::tiny_arch;
use binarycop::serve::engine;
use binarycop::BinaryCoP;

const FAULTS: usize = 8;
const SEED: u64 = 123;

fn predictor() -> BinaryCoP {
    let arch = tiny_arch();
    let mut net = build_bnn(&arch, 5);
    let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
    let _ = net.forward(&x, Mode::Train);
    BinaryCoP::from_trained(&net, &arch)
}

fn images(n: usize) -> Vec<Tensor> {
    let gen = GeneratorConfig {
        img_size: 16,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, n.div_ceil(4), 0xFA17);
    (0..n).map(|i| ds.image(i % ds.len())).collect()
}

/// The fault plan used below must actually perturb the canary, or the
/// isolation tests would vacuously pass; pin that precondition.
#[test]
fn fault_plan_perturbs_the_canary() {
    let p = predictor();
    let frame = bcp_serve::canary_frame(3, 16, 16);
    let golden = Replica::canary(&p, &frame);
    let mut faulty = p.clone();
    faulty.inject_faults(FAULTS, SEED);
    assert_ne!(
        Replica::canary(&faulty, &frame),
        golden,
        "chosen fault plan must change the canary output"
    );
}

#[test]
fn faulty_worker_is_isolated_and_healthy_workers_keep_serving() {
    let p = predictor();
    let e = engine(
        &p,
        2,
        ServeConfig {
            max_batch: 1,
            canary_every: 1,
            ..ServeConfig::default()
        },
    );
    e.inject_faults(0, FAULTS, SEED);
    let frames = images(7);
    // Round-robin starts at worker 0: the first request rides the batch
    // that trips worker 0's canary gate and is failed — never answered
    // wrongly.
    assert_eq!(
        e.classify(&frames[0]),
        Err(ServeError::WorkerFault { worker: 0 })
    );
    assert_eq!(e.healthy_workers(), 1);
    // Every subsequent request is served correctly by the healthy worker.
    for f in &frames[1..] {
        assert_eq!(e.classify(f), Ok(p.classify(f)));
    }
    assert_eq!(e.healthy_workers(), 1, "healthy worker stays healthy");
    e.shutdown();
}

#[test]
fn all_workers_faulted_degrades_to_explicit_errors() {
    let p = predictor();
    let e = engine(
        &p,
        1,
        ServeConfig {
            max_batch: 1,
            canary_every: 1,
            ..ServeConfig::default()
        },
    );
    e.inject_faults(0, FAULTS, SEED);
    let frames = images(2);
    assert_eq!(
        e.classify(&frames[0]),
        Err(ServeError::WorkerFault { worker: 0 })
    );
    assert_eq!(e.healthy_workers(), 0);
    // With nobody left, requests still resolve — explicitly.
    assert_eq!(e.classify(&frames[1]), Err(ServeError::NoHealthyWorkers));
    e.shutdown();
}

#[test]
fn concurrent_traffic_over_a_faulty_pool_is_correct_or_explicit() {
    let p = predictor();
    let e = engine(
        &p,
        2,
        ServeConfig {
            canary_every: 1,
            ..ServeConfig::default()
        },
    );
    e.inject_faults(0, FAULTS, SEED);
    let frames = images(4);
    let expected: Vec<_> = frames.iter().map(|f| p.classify(f)).collect();
    let eng = &e;
    std::thread::scope(|s| {
        for (f, want) in frames.iter().zip(&expected) {
            s.spawn(move || {
                for _ in 0..8 {
                    match eng.classify(f) {
                        // Either the right answer or a detected fault —
                        // never a wrong classification.
                        Ok(got) => assert_eq!(got, *want),
                        Err(ServeError::WorkerFault { worker }) => assert_eq!(worker, 0),
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
    });
    assert_eq!(e.healthy_workers(), 1);
    e.shutdown();
}
