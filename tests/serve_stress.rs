//! Stress-level invariants of the `bcp-serve` engine over the *real*
//! predictor (tiny-CNV), pinned by the issue's acceptance criteria:
//!
//! * **Determinism**: the same 256 frames produce byte-identical
//!   `MaskClass` sequences through the engine at worker counts 1, 2 and 8
//!   as through plain `classify_batch` — concurrency must never change
//!   answers, only their timing.
//! * **Saturation safety**: under `Reject` and `ShedOldest` with a tiny
//!   queue and many closed-loop clients, the engine never deadlocks and
//!   every request resolves to exactly one response (cross-checked against
//!   the engine's own telemetry counters).
//! * **Deadline honesty**: every successful response lands within the
//!   configured deadline.

use bcp_dataset::{Dataset, GeneratorConfig};
use bcp_nn::Mode;
use bcp_serve::{BackpressurePolicy, ServeConfig};
use bcp_telemetry::Registry;
use bcp_tensor::{Shape, Tensor};
use binarycop::model::build_bnn;
use binarycop::recipe::tiny_arch;
use binarycop::serve::engine;
use binarycop::BinaryCoP;
use std::time::Duration;

fn predictor() -> BinaryCoP {
    let arch = tiny_arch();
    let mut net = build_bnn(&arch, 5);
    let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
    let _ = net.forward(&x, Mode::Train);
    BinaryCoP::from_trained(&net, &arch)
}

fn images(n: usize) -> Vec<Tensor> {
    let gen = GeneratorConfig {
        img_size: 16,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, n.div_ceil(4), 0xC0FFEE);
    (0..n).map(|i| ds.image(i % ds.len())).collect()
}

#[test]
fn engine_is_deterministic_across_worker_counts() {
    let p = predictor();
    let frames = images(256);
    // Reference: the threaded streaming pipeline, no serving layer at all.
    let reference = p.classify_batch(&frames);
    for workers in [1usize, 2, 8] {
        let e = engine(&p, workers, ServeConfig::default());
        let tickets: Vec<_> = frames
            .iter()
            .map(|f| e.submit(f).expect("Block policy never refuses"))
            .collect();
        let served: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("lossless config: every request succeeds"))
            .collect();
        assert_eq!(
            served, reference,
            "engine with {workers} workers diverged from classify_batch"
        );
        e.shutdown();
    }
}

#[test]
fn batched_kernel_engine_is_byte_identical_to_classify_batch() {
    // Same shape as the determinism test above, but tuned so worker
    // dispatch actually forms large micro-batches: max_batch 16 spans four
    // register blocks of the blocked GEMM, and a non-zero max_wait lets the
    // queue coalesce. The register-blocked kernel inside `infer_batch` must
    // be byte-identical to the threaded streaming `classify_batch` — and to
    // the in-thread `classify_block` it is built from — at every worker
    // count.
    let p = predictor();
    let frames = images(96);
    let reference = p.classify_batch(&frames);
    assert_eq!(
        p.classify_block(&frames),
        reference,
        "blocked in-thread path diverged from streaming classify_batch"
    );
    for workers in [1usize, 2, 8] {
        let e = engine(
            &p,
            workers,
            ServeConfig {
                max_batch: 16,
                max_wait: Duration::from_micros(500),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<_> = frames
            .iter()
            .map(|f| e.submit(f).expect("Block policy never refuses"))
            .collect();
        let served: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("lossless config: every request succeeds"))
            .collect();
        assert_eq!(
            served, reference,
            "batched-kernel engine with {workers} workers diverged from classify_batch"
        );
        e.shutdown();
    }
}

#[test]
fn reject_saturation_never_deadlocks_or_loses_responses() {
    let p = predictor().with_telemetry(Registry::new());
    let e = engine(
        &p,
        1,
        ServeConfig {
            queue_cap: 2,
            max_batch: 2,
            policy: BackpressurePolicy::Reject,
            ..ServeConfig::default()
        },
    );
    let frames = images(8);
    let report = bcp_serve::run_closed_loop(&e, &frames, 8, 25);
    e.shutdown();
    assert!(
        report.accounted(),
        "lost or duplicated responses: {report:?}"
    );
    assert!(report.ok > 0, "some traffic must get through");
    assert_eq!(report.shed + report.expired + report.faulted, 0);
    // The engine's own books must agree with the client-side tally.
    let snap = p.telemetry().unwrap().snapshot();
    assert_eq!(snap.counters["serve.ok"], report.ok as u64);
    assert_eq!(
        snap.counters.get("serve.rejected").copied().unwrap_or(0),
        report.rejected as u64
    );
}

#[test]
fn shed_oldest_saturation_never_deadlocks_or_loses_responses() {
    let p = predictor().with_telemetry(Registry::new());
    let e = engine(
        &p,
        1,
        ServeConfig {
            queue_cap: 2,
            max_batch: 2,
            policy: BackpressurePolicy::ShedOldest,
            ..ServeConfig::default()
        },
    );
    let frames = images(8);
    let report = bcp_serve::run_closed_loop(&e, &frames, 8, 25);
    e.shutdown();
    assert!(
        report.accounted(),
        "lost or duplicated responses: {report:?}"
    );
    assert!(report.ok > 0);
    assert_eq!(report.rejected + report.expired + report.faulted, 0);
    let snap = p.telemetry().unwrap().snapshot();
    assert_eq!(snap.counters["serve.ok"], report.ok as u64);
    assert_eq!(
        snap.counters.get("serve.shed").copied().unwrap_or(0),
        report.shed as u64
    );
}

#[test]
fn successful_responses_always_land_inside_the_deadline() {
    let deadline = Duration::from_millis(250);
    let p = predictor();
    let e = engine(
        &p,
        2,
        ServeConfig {
            deadline: Some(deadline),
            ..ServeConfig::default()
        },
    );
    let frames = images(8);
    let report = bcp_serve::run_closed_loop(&e, &frames, 8, 15);
    e.shutdown();
    assert!(report.accounted());
    assert!(report.ok > 0);
    // Engine-side: an Ok is only completed inside the deadline. Client-side
    // measurement adds only wakeup latency; allow a small scheduler slack.
    let slack = Duration::from_millis(25);
    assert!(
        report.max <= deadline + slack,
        "successful response took {:?}, deadline {:?}",
        report.max,
        deadline
    );
    assert!(report.p99 <= deadline + slack);
}

#[test]
fn submitting_threads_and_waiting_threads_can_be_different() {
    // The MPMC admission queue plus Arc'd slots mean tickets can cross
    // threads: one producer submits, another consumer waits.
    let p = predictor();
    let e = engine(&p, 2, ServeConfig::default());
    let frames = images(32);
    let reference = p.classify_batch(&frames);
    let tickets: Vec<_> = frames.iter().map(|f| e.submit(f).unwrap()).collect();
    let served = std::thread::scope(|s| {
        s.spawn(|| {
            tickets
                .into_iter()
                .map(|t| t.wait().expect("lossless"))
                .collect::<Vec<_>>()
        })
        .join()
        .expect("waiter thread")
    });
    e.shutdown();
    assert_eq!(served, reference);
}
