//! Cross-layer telemetry integration: one registry metering training,
//! single-frame prediction and the streaming pipeline, then the on-disk
//! artifact contract (`events.jsonl` + `summary.json`).

use bcp_dataset::{Dataset, GeneratorConfig, MaskClass};
use bcp_telemetry::Registry;
use binarycop::predictor::BinaryCoP;
use binarycop::recipe::{run_instrumented, Recipe};
use serde::Value;

fn small_recipe() -> Recipe {
    Recipe {
        train_per_class: 12,
        test_per_class: 6,
        epochs: 3,
        ..Recipe::test_scale()
    }
}

#[test]
fn one_registry_meters_training_and_inference() {
    let registry = Registry::with_event_buffer();
    let model = run_instrumented(&small_recipe(), Some(&registry), |_| {});
    let predictor =
        BinaryCoP::from_trained(&model.net, &model.arch).with_telemetry(registry.clone());

    let gen = GeneratorConfig {
        img_size: 16,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, 3, 0xF00D);
    let images: Vec<_> = (0..ds.len()).map(|i| ds.image(i)).collect();
    let single = predictor.classify(&images[0]);
    let batch = predictor.classify_batch(&images[1..]);

    let snap = registry.snapshot();
    // Training layer.
    assert_eq!(snap.counters["train.epochs"], 3);
    assert_eq!(snap.histograms["train.epoch_ns"].count, 3);
    assert!(snap.gauges.contains_key("train.epoch.loss"));
    assert!(snap.gauges.contains_key("train.epoch.sign_flip_rate"));
    // Prediction layer: every frame counted exactly once.
    assert_eq!(snap.counters["predict.frames"], images.len() as u64);
    let class_total: u64 = MaskClass::ALL
        .iter()
        .filter_map(|c| {
            let slug = match c {
                MaskClass::CorrectlyMasked => "correct",
                MaskClass::NoseExposed => "nose_exposed",
                MaskClass::NoseMouthExposed => "nose_mouth_exposed",
                MaskClass::ChinExposed => "chin_exposed",
            };
            snap.counters.get(&format!("predict.class.{slug}")).copied()
        })
        .sum();
    assert_eq!(class_total, images.len() as u64);
    assert_eq!(
        snap.histograms["predict.latency_ns"].count,
        images.len() as u64
    );
    let _ = (single, batch);
    // Streaming layer: per-stage fractions partition each stage's loop.
    assert_eq!(snap.counters["stream.frames"], (images.len() - 1) as u64);
    let stage_names: Vec<&str> = snap
        .counters
        .keys()
        .filter_map(|k| {
            k.strip_prefix("stream.")
                .and_then(|r| r.strip_suffix(".tokens"))
        })
        .collect();
    assert!(!stage_names.is_empty(), "no stream stage metrics exported");
    for name in stage_names {
        let f = snap.gauges[&format!("stream.{name}.busy_frac")]
            + snap.gauges[&format!("stream.{name}.idle_frac")]
            + snap.gauges[&format!("stream.{name}.blocked_frac")];
        assert!((f - 1.0).abs() < 1e-9, "stage {name}: fractions sum to {f}");
    }
}

#[test]
fn artifacts_round_trip_through_json() {
    let registry = Registry::with_event_buffer();
    let model = run_instrumented(&small_recipe(), Some(&registry), |_| {});
    let predictor =
        BinaryCoP::from_trained(&model.net, &model.arch).with_telemetry(registry.clone());
    let gen = GeneratorConfig {
        img_size: 16,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, 2, 0xBEEF);
    for i in 0..ds.len() {
        predictor.classify(&ds.image(i));
    }

    let dir = std::env::temp_dir().join(format!("bcp-e2e-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary_path = registry.write_artifacts(&dir).unwrap();

    let summary: Value =
        serde_json::from_str(&std::fs::read_to_string(&summary_path).unwrap()).unwrap();
    assert_eq!(summary["counters"]["train.epochs"].as_u64(), Some(3));
    let lat = &summary["histograms"]["predict.latency_ns"];
    for q in ["p50", "p95", "p99"] {
        assert!(lat[q].as_u64().unwrap_or(0) > 0, "{q} missing");
    }

    // Each event line parses standalone; epoch marks carry the dynamics.
    let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let mut epoch_marks = 0;
    for line in events.lines() {
        let e: Value = serde_json::from_str(line).unwrap();
        assert!(!e["ts_us"].is_null() && !e["kind"].is_null());
        if e["name"].as_str() == Some("train.epoch") {
            epoch_marks += 1;
            assert!(!e["loss"].is_null() && !e["sign_flip_rate"].is_null());
        }
    }
    assert_eq!(epoch_marks, 3, "one mark event per epoch");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_classification_counts_are_exact() {
    let registry = Registry::new();
    let model = run_instrumented(&small_recipe(), None, |_| {});
    let predictor =
        BinaryCoP::from_trained(&model.net, &model.arch).with_telemetry(registry.clone());
    let gen = GeneratorConfig {
        img_size: 16,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, 4, 0xCAFE);
    let images: Vec<_> = (0..ds.len()).map(|i| ds.image(i)).collect();

    std::thread::scope(|s| {
        for chunk in images.chunks(4) {
            let p = &predictor;
            s.spawn(move || {
                for img in chunk {
                    p.classify(img);
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.counters["predict.frames"], images.len() as u64);
    assert_eq!(
        snap.histograms["predict.latency_ns"].count,
        images.len() as u64
    );
}
