//! Cross-validation of the three timing views on the published
//! architectures: the analytical model (`perf`), the discrete-event
//! simulation (`cyclesim`), and the threaded software execution
//! (`stream`) must tell one consistent story.

use bcp_finn::cyclesim::simulate;
use bcp_finn::data::QuantMap;
use bcp_finn::perf::CLOCK_100MHZ;
use bcp_finn::stream::run_streaming;
use bcp_nn::Mode;
use bcp_tensor::Shape;
use binarycop::arch::ArchKind;
use binarycop::deploy::deploy;
use binarycop::model::build_bnn;

fn deployed(kind: ArchKind) -> (bcp_finn::Pipeline, usize) {
    let arch = kind.arch();
    let mut net = build_bnn(&arch, 3);
    let x = bcp_tensor::init::uniform(
        Shape::nchw(2, 3, arch.input_size, arch.input_size),
        -1.0,
        1.0,
        4,
    );
    let _ = net.forward(&x, Mode::Train);
    (deploy(&net, &arch), arch.input_size)
}

#[test]
fn event_sim_matches_analytical_for_all_prototypes() {
    for kind in ArchKind::ALL {
        let (pipeline, _) = deployed(kind);
        let analytical = CLOCK_100MHZ.analyze(&pipeline);
        let sim = simulate(&pipeline, 64, 2);
        assert_eq!(
            sim.first_frame_latency, analytical.latency_cycles,
            "{kind:?}: fill latency"
        );
        assert_eq!(
            sim.measured_ii, analytical.initiation_interval,
            "{kind:?}: steady-state II"
        );
        // Utilization sanity: the bottleneck is saturated, nothing exceeds 1.
        for (i, &u) in sim.stage_utilization.iter().enumerate() {
            assert!(u <= 1.01, "{kind:?} stage {i} over-utilized: {u}");
        }
    }
}

#[test]
fn ncnv_headline_claim_order_of_magnitude() {
    // The ~6400 fps n-CNV claim, validated through the *event simulation*
    // rather than the closed-form model.
    let (pipeline, _) = deployed(ArchKind::NCnv);
    let sim = simulate(&pipeline, 64, 2);
    let fps = CLOCK_100MHZ.hz / sim.measured_ii as f64;
    assert!(
        (2_000.0..20_000.0).contains(&fps),
        "n-CNV event-sim throughput {fps} fps out of band"
    );
}

#[test]
fn threaded_execution_is_functionally_identical_for_ncnv() {
    let (pipeline, size) = deployed(ArchKind::NCnv);
    let frames: Vec<QuantMap> = (0..4u64)
        .map(|s| {
            let px: Vec<f32> = (0..3 * size * size)
                .map(|i| (((i as u64 * 37 + s * 101) % 256) as f32) / 255.0)
                .collect();
            QuantMap::from_unit_floats(3, size, size, &px)
        })
        .collect();
    let (streamed, stats) = run_streaming(&pipeline, &frames, 2);
    for (f, got) in frames.iter().zip(&streamed) {
        assert_eq!(got, &pipeline.forward(f));
    }
    assert!(stats.per_stage_processed.iter().all(|&c| c == 4));
}
