//! End-to-end integrity of the request-lifecycle tracer (`bcp-trace`)
//! through the *real* serving stack, pinned by the issue's satellite:
//!
//! * **Monotone stamps** — every reached lifecycle event carries a
//!   timestamp no earlier than the previous one, on every record, under
//!   randomized worker counts / batch shapes (proptest).
//! * **Exactly one terminal span per TraceId** — a sampled request
//!   produces exactly one finished record; no duplicates, no orphans.
//! * **Telescoping accounting** — the five segment durations of a
//!   completed record sum *exactly* to its end-to-end latency (the
//!   segments share boundary stamps, so there is no rounding slack).
//! * **Drops are counted, never silent** — with a deliberately tiny ring
//!   under concurrent load, `drained + dropped == sampled` holds exactly.
//!
//! Case counts honor `PROPTEST_CASES` (CI sets a small value); each case
//! spins a real engine over the tiny-CNV predictor, so the per-case load
//! is kept deliberately light.

use bcp_dataset::{Dataset, GeneratorConfig};
use bcp_nn::Mode;
use bcp_serve::ServeConfig;
use bcp_tensor::{Shape, Tensor};
use bcp_trace::{audit, TraceConfig, TraceOutcome, EVENTS, SEGMENTS};
use binarycop::model::build_bnn;
use binarycop::recipe::tiny_arch;
use binarycop::serve::engine;
use binarycop::BinaryCoP;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::OnceLock;
use std::time::Duration;

/// One trained tiny predictor shared by every case — building it is far
/// more expensive than serving a handful of frames through it.
fn predictor() -> &'static BinaryCoP {
    static P: OnceLock<BinaryCoP> = OnceLock::new();
    P.get_or_init(|| {
        let arch = tiny_arch();
        let mut net = build_bnn(&arch, 5);
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
        let _ = net.forward(&x, Mode::Train);
        BinaryCoP::from_trained(&net, &arch)
    })
}

fn images(n: usize) -> Vec<Tensor> {
    let gen = GeneratorConfig {
        img_size: 16,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, n.div_ceil(4), 0xBEEF);
    (0..n).map(|i| ds.image(i % ds.len())).collect()
}

proptest! {
    /// Every request traced at 100% sampling through a real engine yields
    /// a well-formed record: unique id, monotone stamps over all seven
    /// lifecycle events, Ok outcome, and segment durations that telescope
    /// exactly to the end-to-end latency.
    #[test]
    fn every_sampled_request_yields_one_sound_record(
        workers in 1usize..3,
        n_requests in 4usize..17,
        max_batch in 1usize..9,
    ) {
        let cfg = ServeConfig {
            max_batch,
            max_wait: Duration::from_micros(200),
            trace: Some(TraceConfig::sample_all()),
            ..ServeConfig::default()
        };
        let e = engine(predictor(), workers, cfg);
        let frames = images(n_requests);
        let tickets: Vec<_> = frames
            .iter()
            .map(|f| e.submit(f).expect("Block policy never refuses"))
            .collect();
        for t in tickets {
            t.wait().expect("lossless config: every request succeeds");
        }
        let tracer = e.tracer().expect("tracing enabled");
        e.shutdown();
        let records = tracer.drain();

        // 100% sampling + ample ring: one record per request, none lost.
        prop_assert_eq!(tracer.dropped(), 0);
        prop_assert_eq!(records.len(), n_requests);
        prop_assert_eq!(tracer.sampled(), n_requests as u64);

        // Exactly one terminal span per TraceId.
        let ids: HashSet<_> = records.iter().map(|r| r.id).collect();
        prop_assert_eq!(ids.len(), records.len());

        for r in &records {
            prop_assert_eq!(r.outcome, TraceOutcome::Ok);
            prop_assert!(r.is_complete(), "Ok record reached all events: {:?}", r.stamps);
            // Monotone stamps across the full lifecycle.
            let ts: Vec<u64> = EVENTS
                .iter()
                .map(|&ev| r.stamp(ev).expect("complete record"))
                .collect();
            prop_assert!(
                ts.windows(2).all(|w| w[0] <= w[1]),
                "non-monotone stamps: {:?}",
                ts
            );
            // Telescoping: segments share boundaries, so the sum is exact.
            let seg_sum: u64 = SEGMENTS
                .iter()
                .map(|&s| r.segment_ns(s).expect("complete record"))
                .sum();
            prop_assert_eq!(Some(seg_sum), r.end_to_end_ns());
            prop_assert!(r.worker < workers, "worker stamped: {}", r.worker);
            prop_assert!((1..=max_batch as u32).contains(&r.batch_size));
        }

        // The shared audit pass agrees with the hand-rolled checks.
        prop_assert!(audit(&records).is_ok(), "audit: {:?}", audit(&records));
    }
}

/// The register-blocked batch dispatch (`infer_batch` → `classify_block`)
/// and the threaded streaming dispatch (`streaming_min_batch`) both run
/// under the same tracer: compute-segment attribution must still telescope
/// exactly to end-to-end latency on every record, whichever kernel path a
/// batch took.
#[test]
fn compute_attribution_telescopes_through_the_batched_paths() {
    for streaming_min_batch in [None, Some(2)] {
        let cfg = ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(500),
            streaming_min_batch,
            trace: Some(TraceConfig::sample_all()),
            ..ServeConfig::default()
        };
        let e = engine(predictor(), 2, cfg);
        let frames = images(24);
        let tickets: Vec<_> = frames
            .iter()
            .map(|f| e.submit(f).expect("Block policy never refuses"))
            .collect();
        for t in tickets {
            t.wait().expect("lossless config");
        }
        let tracer = e.tracer().expect("tracing enabled");
        e.shutdown();
        let records = tracer.drain();
        assert_eq!(records.len(), 24);

        let mut saw_multi_frame_batch = false;
        for r in &records {
            assert_eq!(r.outcome, TraceOutcome::Ok);
            assert!(r.is_complete());
            let seg_sum: u64 = SEGMENTS
                .iter()
                .map(|&s| r.segment_ns(s).expect("complete record"))
                .sum();
            assert_eq!(
                Some(seg_sum),
                r.end_to_end_ns(),
                "segments must telescope under streaming_min_batch {streaming_min_batch:?}"
            );
            saw_multi_frame_batch |= r.batch_size >= 2;
        }
        // 24 requests through a 16-deep queue with coalescing wait must
        // form at least one multi-frame batch, so the blocked (or
        // streaming) kernel path genuinely ran.
        assert!(
            saw_multi_frame_batch,
            "no batch reached the multi-frame kernel path"
        );
        audit(&records).expect("records audit clean");
    }
}

/// Under concurrent producers with a deliberately tiny ring, finished
/// records may be dropped — but every drop is counted, never silent:
/// `drained + dropped == sampled` holds exactly after shutdown.
#[test]
fn ring_saturation_drops_are_counted_never_silent() {
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(100),
        trace: Some(TraceConfig {
            sample_rate: 1,
            ring_capacity: 2, // deliberately starved
        }),
        ..ServeConfig::default()
    };
    let e = engine(predictor(), 2, cfg);
    let frames = images(16);
    std::thread::scope(|s| {
        for c in 0..4usize {
            let e = &e;
            let frames = &frames;
            s.spawn(move || {
                for f in frames.iter().skip(c).step_by(4) {
                    for _ in 0..4 {
                        e.submit(f)
                            .expect("Block policy never refuses")
                            .wait()
                            .expect("lossless config");
                    }
                }
            });
        }
    });
    let tracer = e.tracer().expect("tracing enabled");
    e.shutdown();
    let records = tracer.drain();

    assert_eq!(tracer.sampled(), 64, "sample_rate 1 traces every admission");
    assert_eq!(
        records.len() as u64 + tracer.dropped(),
        tracer.sampled(),
        "every sampled trace is either drained or counted as dropped"
    );
    assert!(
        tracer.dropped() > 0,
        "a 2-slot ring under 64 finished traces must overflow"
    );
    // Whatever survived the ring is still individually sound.
    audit(&records).expect("surviving records audit clean");
}
