//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the bitstream codec uses: an immutable [`Bytes`]
//! buffer with a read cursor, a growable [`BytesMut`] writer, and the
//! little-endian [`Buf`]/[`BufMut`] accessors. `Bytes` keeps the payload
//! in an `Arc` so clones are cheap, matching the real crate's contract.

use std::ops::Deref;
use std::sync::Arc;

/// Read-side abstraction: a cursor over a byte sequence.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `n` (panics past the end).
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side abstraction.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// Cheaply-clonable immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// Length of the unread portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(v),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.pos += n;
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Growable byte writer; freeze into [`Bytes`] when done.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(12);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        let mut b = w.freeze();
        assert_eq!(b.len(), 12);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 0, 0, 0, 9];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 9);
    }

    #[test]
    fn bytes_indexing_matches_unread_window() {
        let mut b = Bytes::from(vec![10u8, 11, 12, 13]);
        b.advance(1);
        assert_eq!(&b[..2], &[11, 12]);
        assert_eq!(b.to_vec(), vec![11, 12, 13]);
    }
}
