//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench targets compiling
//! and *useful*: each `bench_function` is warmed up and timed, results
//! print to stderr, and — unlike the real crate's HTML reports — every
//! run also merges a machine-readable summary into `BENCH_summary.json`
//! (override the path with the `BENCH_SUMMARY_PATH` env var) so the perf
//! trajectory can accumulate across PRs. No statistical analysis is
//! performed beyond taking the median of the sample batch; treat the
//! numbers as trend indicators, not confidence intervals.

use serde::Serialize;
use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter rendering.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter alone (the group name is the function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Setup-cost hint for [`Bencher::iter_batched`]. The stand-in times the
/// routine per invocation either way, so the hint is accepted but unused.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small setup value; the real crate amortizes over large batches.
    SmallInput,
    /// Large setup value; the real crate uses one-input batches.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Passed to the bench closure; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    samples: usize,
    target: Duration,
    result_ns: &'a mut f64,
}

impl Bencher<'_> {
    /// Measure `f`: warm up, pick an iteration count that fills the
    /// measurement window, then record the median sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + calibration: time a single call.
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(50));

        // Iterations per sample so that one sample ≈ target / samples.
        let per_sample = (self.target.as_nanos() / self.samples.max(1) as u128)
            .checked_div(one.as_nanos())
            .unwrap_or(1)
            .clamp(1, 1_000_000) as usize;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        *self.result_ns = samples_ns[samples_ns.len() / 2];
    }

    /// Measure `routine` on values produced by `setup`, excluding the
    /// setup time from the measurement (each invocation is timed
    /// individually; the median is recorded).
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples_ns.push(t.elapsed().as_nanos() as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        *self.result_ns = samples_ns[samples_ns.len() / 2].max(1.0);
    }
}

/// One recorded measurement, as written to `BENCH_summary.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRecord {
    /// `group/function` name.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per second (1e9 / ns_per_iter).
    pub iters_per_sec: f64,
    /// Elements (or bytes) per second when the group declared a
    /// [`Throughput`]; absent otherwise.
    pub throughput_per_sec: Option<f64>,
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    target: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Total measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.target = d;
        self
    }

    /// Annotate throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut ns = f64::NAN;
        let mut b = Bencher {
            samples: self.samples,
            // The real crate spends the whole window on statistics; the
            // stand-in only needs a stable median, so a third suffices.
            target: self.target / 3,
            result_ns: &mut ns,
        };
        f(&mut b);
        self.record(&id.id, ns);
        self
    }

    /// Time a benchmark closure that borrows an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut ns = f64::NAN;
        let mut b = Bencher {
            samples: self.samples,
            target: self.target / 3,
            result_ns: &mut ns,
        };
        f(&mut b, input);
        self.record(&id.id, ns);
        self
    }

    /// Record an externally measured median, in nanoseconds per iteration.
    ///
    /// For measurements [`Bencher::iter`] cannot express — e.g. paired
    /// interleaved timing of two competing implementations, where both
    /// sides must alternate inside one loop so slow frequency/neighbor
    /// drift on a shared host cancels out of their ratio. The caller owns
    /// warmup and median selection; the record lands in the summary like
    /// any other entry (throughput annotation applies as usual).
    pub fn record_ns(&mut self, id: impl Into<BenchmarkId>, ns: f64) -> &mut Self {
        let id = id.into();
        self.record(&id.id, ns);
        self
    }

    /// End the group (records are flushed by `criterion_main!`).
    pub fn finish(self) {}

    fn record(&mut self, id: &str, ns: f64) {
        let name = format!("{}/{id}", self.name);
        let throughput_per_sec = self.throughput.map(|t| {
            let per_iter = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            per_iter * 1e9 / ns
        });
        eprintln!(
            "bench {name}: {ns:.0} ns/iter ({:.1}/s{})",
            1e9 / ns,
            throughput_per_sec
                .map(|t| format!(", throughput {t:.0}/s"))
                .unwrap_or_default()
        );
        self.criterion.records.push(BenchRecord {
            name,
            ns_per_iter: ns,
            iters_per_sec: 1e9 / ns,
            throughput_per_sec,
        });
    }
}

/// The bench context handed to every registered bench function.
#[derive(Default)]
pub struct Criterion {
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
            target: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Top-level `bench_function` (no explicit group): group = bench id.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(id.to_string());
        g.bench_function("base", f);
        self
    }

    /// Merge this run's records into the JSON summary file. Called by
    /// `criterion_main!`; path from `BENCH_SUMMARY_PATH` or
    /// `BENCH_summary.json` in the working directory.
    pub fn flush_summary(&self) {
        let path = std::env::var("BENCH_SUMMARY_PATH")
            .unwrap_or_else(|_| "BENCH_summary.json".to_string());
        let mut map: serde_json::Map = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
            .and_then(|v| v.as_object().cloned())
            .unwrap_or_default();
        for r in &self.records {
            map.insert(r.name.clone(), r.to_value());
        }
        let json =
            serde_json::to_string_pretty(&serde_json::Value::Object(map)).expect("summary json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion stand-in: cannot write {path}: {e}");
        } else {
            eprintln!("bench summary merged into {path}");
        }
    }
}

/// Register bench functions under a group name (compatible subset of the
/// real macro; the optional `config = …` form is not supported).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main`: run every group, then flush the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` (and plain `cargo test --benches`)
            // run bench binaries in test mode: skip measurement entirely.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.flush_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut ns = f64::NAN;
        let mut b = Bencher {
            samples: 4,
            target: Duration::from_millis(20),
            result_ns: &mut ns,
        };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(ns.is_finite() && ns > 0.0);
    }

    #[test]
    fn record_ns_lands_like_a_measured_entry() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("paired");
            g.throughput(Throughput::Elements(32));
            g.record_ns("engine", 4_000_000.0)
                .record_ns(BenchmarkId::new("seq", "B8"), 3_200_000.0);
        }
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].name, "paired/engine");
        assert_eq!(c.records[1].name, "paired/seq/B8");
        let t = c.records[0].throughput_per_sec.unwrap();
        assert!((t - 32.0 * 1e9 / 4_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn records_accumulate_with_throughput() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(30))
                .throughput(Throughput::Elements(100));
            g.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        }
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].name, "g/f");
        assert!(c.records[0].throughput_per_sec.unwrap() > 0.0);
    }
}
