//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the two pieces the workspace uses — `channel::bounded` and
//! `thread::scope` — on top of std. The channel is a Mutex/Condvar bounded
//! queue; unlike std's `mpsc::sync_channel` it exposes [`channel::Sender::len`]
//! and [`channel::Receiver::len`], which the telemetry layer samples for
//! FIFO-occupancy metrics.

pub mod channel {
    //! Bounded blocking FIFO channel with back-pressure.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full; the message is handed back.
        Full(T),
        /// Every receiver has been dropped; the message is handed back.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`] /
    /// [`Receiver::recv_deadline`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Create a bounded channel with `cap` slots (`cap ≥ 1`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "this bounded channel needs at least one slot");
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Block until a slot frees up, then enqueue. Errors when every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.buf.len() < st.cap {
                    st.buf.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Enqueue without blocking: fails with [`TrySendError::Full`] when
        /// no slot is free (the caller decides the overload policy).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.buf.len() < st.cap {
                st.buf.push_back(value);
                self.0.not_empty.notify_one();
                Ok(())
            } else {
                Err(TrySendError::Full(value))
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .buf
                .len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Channel capacity.
        pub fn capacity(&self) -> Option<usize> {
            Some(self.0.state.lock().unwrap_or_else(|e| e.into_inner()).cap)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives. Errors when the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking: fails with [`TryRecvError::Empty`]
        /// when nothing is queued right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.buf.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Block until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Block until a message arrives or the wall clock reaches
        /// `deadline` — the primitive a micro-batcher's flush timer needs.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .buf
                .len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Channel capacity.
        pub fn capacity(&self) -> Option<usize> {
            Some(self.0.state.lock().unwrap_or_else(|e| e.into_inner()).cap)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }
}

pub mod queue {
    //! Non-blocking bounded queues in the `crossbeam::queue` shape.
    //!
    //! Real crossbeam backs `ArrayQueue` with a lock-free ring; this
    //! offline stand-in uses a short mutexed critical section (pop-front /
    //! push-back on a preallocated `VecDeque`), which preserves the API
    //! and the never-blocks-on-full semantics the workspace relies on.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Bounded MPMC queue; `push` fails (handing the value back) instead
    /// of blocking when full.
    pub struct ArrayQueue<T> {
        buf: Mutex<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Create a queue holding at most `cap` elements.
        ///
        /// # Panics
        ///
        /// Panics when `cap` is zero, matching crossbeam.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            ArrayQueue {
                buf: Mutex::new(VecDeque::with_capacity(cap)),
                cap,
            }
        }

        /// Append `value`, or hand it back when the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
            if buf.len() >= self.cap {
                Err(value)
            } else {
                buf.push_back(value);
                Ok(())
            }
        }

        /// Remove and return the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.buf
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Elements currently queued.
        pub fn len(&self) -> usize {
            self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The fixed capacity.
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }
}

pub mod thread {
    //! Scoped threads in the crossbeam `scope(|s| …)` shape.

    use std::any::Any;

    /// The scope handle passed to the closure; `spawn` borrows from it.
    /// Copyable so spawned closures can themselves receive a scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (crossbeam
        /// convention, passed by value here since `Scope` is `Copy`) so it
        /// can spawn siblings; most callers ignore it.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. A panicking child thread surfaces as `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fifo_and_close() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = channel::bounded::<u32>(1);
        thread::scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        })
        .unwrap();
    }

    #[test]
    fn try_send_full_and_try_recv_empty() {
        let (tx, rx) = channel::bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_disconnected_returns_value() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(matches!(
            tx.try_send(9),
            Err(channel::TrySendError::Disconnected(9))
        ));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(20)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_deadline_wakes_on_send() {
        let (tx, rx) = channel::bounded::<u32>(1);
        thread::scope(|s| {
            s.spawn(move |_| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                tx.send(7).unwrap();
            });
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            assert_eq!(rx.recv_deadline(deadline), Ok(7));
        })
        .unwrap();
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
