//! Modeled atomics: sequentially-consistent values with C11-style
//! release/acquire happens-before tracking.
//!
//! Values behave as if every access were `SeqCst` (each load observes
//! the latest store), but the *synchronization* effect follows the
//! ordering arguments: only Release-or-stronger stores publish the
//! writer's vector clock, and only Acquire-or-stronger loads join it.
//! A `Relaxed` publish therefore transfers **no** happens-before edge,
//! which the [`cell::UnsafeCell`](crate::cell::UnsafeCell) race
//! detector turns into a reported data race — exactly the bug class the
//! model is after.
//!
//! `compare_exchange_weak` never fails spuriously in the model; code
//! whose correctness *requires* spurious CAS failures (none of ours)
//! would need extra schedules.

use crate::rt::{self, Object, VClock};
pub use std::sync::atomic::Ordering;
use std::sync::OnceLock;

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Shared implementation over a `u64` storage cell, masked per type.
struct Repr {
    init: u64,
    mask: u64,
    id: OnceLock<usize>,
}

impl Repr {
    const fn new(init: u64, mask: u64) -> Repr {
        Repr {
            init,
            mask,
            id: OnceLock::new(),
        }
    }

    /// Lazily register the backing object with the current execution.
    /// Registration is keyed per object instance; model bodies recreate
    /// their objects every execution, so ids never go stale.
    fn id(&self) -> usize {
        *self.id.get_or_init(|| {
            rt::register_object(Object::Atomic {
                value: self.init & self.mask,
                sync: VClock::default(),
                released: false,
            })
        })
    }

    fn load(&self, ord: Ordering, ty: &str) -> u64 {
        let id = self.id();
        rt::op(&format!("{ty}.load({ord:?})"), |inner, me| {
            let Object::Atomic {
                value,
                sync,
                released,
            } = inner.object(id)
            else {
                unreachable!("atomic op on non-atomic object");
            };
            let v = *value;
            let (sync, released) = (sync.clone(), *released);
            if is_acquire(ord) && released {
                inner.clock_of(me).join(&sync);
            }
            v
        })
    }

    fn store(&self, val: u64, ord: Ordering, ty: &str) {
        let id = self.id();
        let val = val & self.mask;
        rt::op(&format!("{ty}.store({ord:?})"), |inner, me| {
            let clock = inner.clock_of(me).clone();
            let Object::Atomic {
                value,
                sync,
                released,
            } = inner.object(id)
            else {
                unreachable!("atomic op on non-atomic object");
            };
            *value = val;
            if is_release(ord) {
                *sync = clock;
                *released = true;
            } else {
                // A relaxed store starts a new, unsynchronized chain: a
                // later Acquire load of *this* value learns nothing.
                *released = false;
            }
        });
    }

    /// Generic read-modify-write. Per C11, an RMW continues the release
    /// sequence regardless of its own ordering, so a relaxed RMW leaves
    /// the published clock intact.
    fn rmw(&self, ord: Ordering, ty: &str, f: impl FnOnce(u64) -> u64) -> u64 {
        let id = self.id();
        let mask = self.mask;
        rt::op(&format!("{ty}.rmw({ord:?})"), |inner, me| {
            let clock = inner.clock_of(me).clone();
            let Object::Atomic {
                value,
                sync,
                released,
            } = inner.object(id)
            else {
                unreachable!("atomic op on non-atomic object");
            };
            let old = *value;
            *value = f(old) & mask;
            let acq = if is_acquire(ord) && *released {
                Some(sync.clone())
            } else {
                None
            };
            if is_release(ord) {
                sync.join(&clock);
                *released = true;
            }
            if let Some(s) = acq {
                inner.clock_of(me).join(&s);
            }
            old
        })
    }

    fn compare_exchange(
        &self,
        expect: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        ty: &str,
    ) -> Result<u64, u64> {
        let id = self.id();
        let new = new & self.mask;
        rt::op(
            &format!("{ty}.cas({success:?},{failure:?})"),
            |inner, me| {
                let clock = inner.clock_of(me).clone();
                let Object::Atomic {
                    value,
                    sync,
                    released,
                } = inner.object(id)
                else {
                    unreachable!("atomic op on non-atomic object");
                };
                if *value == expect {
                    let acq = if is_acquire(success) && *released {
                        Some(sync.clone())
                    } else {
                        None
                    };
                    *value = new;
                    if is_release(success) {
                        sync.join(&clock);
                        *released = true;
                    }
                    if let Some(s) = acq {
                        inner.clock_of(me).join(&s);
                    }
                    Ok(expect)
                } else {
                    let observed = *value;
                    if is_acquire(failure) && *released {
                        let s = sync.clone();
                        inner.clock_of(me).join(&s);
                    }
                    Err(observed)
                }
            },
        )
    }
}

macro_rules! atomic_int {
    ($name:ident, $int:ty, $mask:expr, $label:literal) => {
        /// Modeled atomic integer — see the module docs for semantics.
        pub struct $name(Repr);

        impl $name {
            /// New atomic with `v` as the initial value.
            pub const fn new(v: $int) -> $name {
                $name(Repr::new(v as u64, $mask))
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $int {
                self.0.load(ord, $label) as $int
            }

            /// Atomic store.
            pub fn store(&self, v: $int, ord: Ordering) {
                self.0.store(v as u64, ord, $label)
            }

            /// Atomic wrapping add; returns the previous value.
            pub fn fetch_add(&self, v: $int, ord: Ordering) -> $int {
                self.0
                    .rmw(ord, $label, |old| (old as $int).wrapping_add(v) as u64) as $int
            }

            /// Atomic wrapping subtract; returns the previous value.
            pub fn fetch_sub(&self, v: $int, ord: Ordering) -> $int {
                self.0
                    .rmw(ord, $label, |old| (old as $int).wrapping_sub(v) as u64) as $int
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, v: $int, ord: Ordering) -> $int {
                self.0.rmw(ord, $label, |_| v as u64) as $int
            }

            /// Atomic compare-and-swap.
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.0
                    .compare_exchange(current as u64, new as u64, success, failure, $label)
                    .map(|v| v as $int)
                    .map_err(|v| v as $int)
            }

            /// Weak compare-and-swap. Never fails spuriously in the
            /// model (see module docs).
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

atomic_int!(AtomicU8, u8, 0xff, "AtomicU8");
atomic_int!(AtomicU64, u64, u64::MAX, "AtomicU64");
atomic_int!(AtomicUsize, usize, u64::MAX, "AtomicUsize");

/// Modeled atomic boolean — see the module docs for semantics.
pub struct AtomicBool(Repr);

impl AtomicBool {
    /// New atomic with `v` as the initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool(Repr::new(v as u64, 1))
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        self.0.load(ord, "AtomicBool") != 0
    }

    /// Atomic store.
    pub fn store(&self, v: bool, ord: Ordering) {
        self.0.store(v as u64, ord, "AtomicBool")
    }

    /// Atomic swap; returns the previous value.
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.0.rmw(ord, "AtomicBool", |_| v as u64) != 0
    }
}
