//! Modeled `UnsafeCell`: the data-race detector's instrumentation
//! point.
//!
//! Every access is checked against the vector clocks maintained by the
//! runtime: a read must happen-after all prior writes, a write must
//! happen-after all prior reads *and* writes. Unordered conflicting
//! accesses abort the execution with the failing schedule.

use crate::rt::{self, Object, VClock};
use std::sync::OnceLock;

/// Checked wrapper around [`std::cell::UnsafeCell`], mirroring loom's
/// closure-based access API.
#[derive(Debug, Default)]
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    id: OnceLock<usize>,
}

// SAFETY: the runtime serializes model threads (exactly one runs at a
// time), so accesses never physically race; *logical* races are the
// detector's job, which is the entire point of this type.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// New cell holding `value`.
    pub const fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell {
            data: std::cell::UnsafeCell::new(value),
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(|| {
            rt::register_object(Object::Cell {
                reads: VClock::default(),
                writes: VClock::default(),
                last_writer: None,
            })
        })
    }

    /// Immutable access. The closure runs while this thread holds the
    /// schedule, so no other model thread can touch the cell
    /// concurrently — the *detector* (not the execution) finds races.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let id = self.id();
        rt::op("cell.read", move |inner, me| {
            rt::cell_access(inner, me, id, false);
        });
        f(self.data.get())
    }

    /// Mutable access; see [`with`](UnsafeCell::with).
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let id = self.id();
        rt::op("cell.write", move |inner, me| {
            rt::cell_access(inner, me, id, true);
        });
        f(self.data.get())
    }
}
