//! Modeled spin hints: a spin is a schedule point, so spinning code
//! yields the schedule instead of busy-looping the model.

/// Modeled [`std::hint::spin_loop`].
pub fn spin_loop() {
    crate::rt::yield_now();
}
