//! # loom (offline stand-in) — bounded exhaustive concurrency model
//! checking
//!
//! A self-contained, dependency-free reimplementation of the parts of
//! loom the workspace needs, in the spirit of the other `vendor/`
//! stand-ins: enough to *exhaustively* test the serving stack's
//! lock-free structures under every (bounded) thread interleaving,
//! with none of the upstream crate's surface we don't use.
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let stats = loom::model::Builder::new().check(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let m = n.clone();
//!     let h = loom::thread::spawn(move || m.fetch_add(1, Ordering::Relaxed));
//!     n.fetch_add(1, Ordering::Relaxed);
//!     h.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! assert!(stats.complete);
//! ```
//!
//! See [`rt`](crate::rt) for the scheduler and memory-model details;
//! the headline features are DFS schedule exploration with replayable
//! failure traces, CHESS-style preemption bounding, release/acquire
//! happens-before tracking with a vector-clock data-race detector on
//! [`cell::UnsafeCell`], deadlock/livelock detection, and logical time
//! so deadline races become schedulable decisions.

#![warn(missing_docs)]

mod atomic;
mod rt;

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;
pub mod time;

pub mod model {
    //! Exploration entry points: [`Builder`] and [`Stats`].
    pub use crate::rt::{Builder, Stats};
}

pub use rt::model;

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use crate::sync::{Arc, Condvar, Mutex};
    use crate::{cell, model, thread};
    use std::time::Duration;

    /// Two relaxed increments of the same cell through an unsynchronized
    /// flag: the detector must find the race.
    #[test]
    #[should_panic(expected = "data race")]
    fn relaxed_publish_is_a_detected_race() {
        model::Builder::new().check(|| {
            let data = Arc::new(cell::UnsafeCell::new(0u32));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, f) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                d.with_mut(|p| unsafe { *p = 42 });
                // BUG under test: Relaxed publish transfers no
                // happens-before edge to the reader.
                f.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) {
                data.with(|p| assert_eq!(unsafe { *p }, 42));
            }
            h.join().unwrap();
        });
    }

    /// The same shape with a Release publish is race-free and the value
    /// is always visible once the flag is.
    #[test]
    fn release_acquire_publish_is_clean() {
        let stats = model::Builder::new().check(|| {
            let data = Arc::new(cell::UnsafeCell::new(0u32));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, f) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                d.with_mut(|p| unsafe { *p = 42 });
                f.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                data.with(|p| assert_eq!(unsafe { *p }, 42));
            }
            h.join().unwrap();
        });
        assert!(stats.complete, "small schedule tree must be exhausted");
        assert!(stats.schedules >= 2, "both flag outcomes must be explored");
    }

    /// Failing executions report the schedule that produced them.
    #[test]
    fn failure_prints_replayable_schedule() {
        let err = std::panic::catch_unwind(|| {
            model::Builder::new().check(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let m = n.clone();
                let h = thread::spawn(move || {
                    // Classic lost update: load + store instead of RMW.
                    let v = m.load(Ordering::SeqCst);
                    m.store(v + 1, Ordering::SeqCst);
                });
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                h.join().unwrap();
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        })
        .expect_err("the lost update must be found");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("failing schedule"), "got: {msg}");
        assert!(msg.contains("AtomicUsize"), "got: {msg}");
    }

    /// ABBA lock ordering deadlocks; the runtime must say so instead of
    /// hanging.
    #[test]
    #[should_panic(expected = "deadlock")]
    fn abba_deadlock_is_detected() {
        model::Builder::new().check(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let ga = a2.lock();
                let gb = b2.lock();
                drop((ga, gb));
            });
            let gb = b.lock();
            let ga = a.lock();
            drop((ga, gb));
            h.join().unwrap();
        });
    }

    /// Timed waits explore both the notified and the timed-out branch.
    #[test]
    fn wait_timeout_explores_both_outcomes() {
        use std::sync::atomic::AtomicUsize as StdAtomicUsize;
        use std::sync::atomic::Ordering as StdOrdering;
        let timed_out = Arc::new(StdAtomicUsize::new(0));
        let notified = Arc::new(StdAtomicUsize::new(0));
        let (t, n) = (timed_out.clone(), notified.clone());
        let stats = model::Builder::new().check(move || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p = pair.clone();
            let h = thread::spawn(move || {
                let mut done = p.0.lock();
                *done = true;
                p.1.notify_one();
                drop(done);
            });
            let mut done = pair.0.lock();
            let mut was_timeout = false;
            while !*done {
                let (guard, timeout) = pair.1.wait_timeout(done, Duration::from_millis(5));
                done = guard;
                if timeout {
                    was_timeout = true;
                    break;
                }
            }
            drop(done);
            if was_timeout {
                t.fetch_add(1, StdOrdering::Relaxed);
            } else {
                n.fetch_add(1, StdOrdering::Relaxed);
            }
            h.join().unwrap();
        });
        assert!(stats.complete);
        assert!(timed_out.load(StdOrdering::Relaxed) > 0, "timeout branch");
        assert!(notified.load(StdOrdering::Relaxed) > 0, "notified branch");
    }

    /// A preemption bound prunes the schedule tree but still completes.
    #[test]
    fn preemption_bound_prunes_schedules() {
        let count = |bound| {
            let mut b = model::Builder::new();
            b.preemption_bound = bound;
            b.check(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let m = n.clone();
                        thread::spawn(move || {
                            for _ in 0..3 {
                                m.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::Relaxed), 6);
            })
        };
        let bounded = count(Some(1));
        let full = count(None);
        assert!(bounded.complete && full.complete);
        assert!(
            bounded.schedules < full.schedules,
            "bound {} must prune below full {}",
            bounded.schedules,
            full.schedules
        );
    }

    /// Logical time: the deadline only passes when the timeout fires.
    #[test]
    fn logical_clock_advances_on_timeout() {
        let stats = model::Builder::new().check(|| {
            let start = crate::time::Instant::now();
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let guard = pair.0.lock();
            let (guard, timed_out) = pair.1.wait_timeout(guard, Duration::from_millis(7));
            drop(guard);
            assert!(timed_out, "nobody notifies: the wait must time out");
            assert!(
                start.elapsed() >= Duration::from_millis(7),
                "timeout must advance the logical clock past the deadline"
            );
        });
        assert!(stats.complete);
    }
}
