//! The model-checking runtime: a bounded exhaustive scheduler.
//!
//! One *execution* runs the user's model body on real OS threads, but
//! only one thread is ever runnable at a time — every modeled operation
//! (atomic access, mutex lock, condvar wait, `UnsafeCell` access) is a
//! *schedule point* where the runtime decides which thread performs the
//! next operation. The decision sequence is recorded; after the
//! execution finishes, the deepest decision with an untried alternative
//! is flipped and the prefix replayed — a depth-first search over the
//! schedule tree (stateless model checking in the loom/CHESS style).
//!
//! Soundness model:
//!
//! * Atomic **values** are sequentially consistent (every load sees the
//!   latest store), but **happens-before** is tracked per the C11
//!   release/acquire rules with vector clocks: only a Release (or
//!   stronger) store publishes the writer's clock, and only an Acquire
//!   (or stronger) load joins it. `Relaxed` accesses order nothing.
//! * [`cell::UnsafeCell`](crate::cell::UnsafeCell) accesses are checked
//!   against those clocks: two conflicting accesses not ordered by
//!   happens-before abort the execution with a data-race report.
//! * A *preemption bound* (CHESS) optionally restricts the search to
//!   schedules with at most N involuntary context switches, which keeps
//!   exploration tractable while still finding most ordering bugs.
//! * Deadlocks (every live thread blocked) and livelocks (an execution
//!   exceeding the step budget) abort with the same replayable report.
//!
//! On any failure the runtime panics with the full schedule of the
//! failing execution — one `tN op` line per step — so the interleaving
//! can be read off directly (and optionally written to
//! `BCP_MODEL_REPLAY_DIR`).

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::Duration;

thread_local! {
    /// The execution this OS thread participates in, and its model tid.
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Sentinel panic payload used to unwind model threads when the
/// execution has already failed (deadlock, race, assertion elsewhere).
pub(crate) struct ModelAbort;

/// A vector clock: `vc[tid]` is the last step of thread `tid` known to
/// happen-before the clock's owner.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: usize, v: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid.saturating_add(1), 0);
        }
        self.0[tid] = v;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        for (tid, &v) in other.0.iter().enumerate() {
            if self.get(tid) < v {
                self.set(tid, v);
            }
        }
    }

    /// `self` ≤ `other` componentwise: everything the owner of `self`
    /// did is visible to the owner of `other`.
    fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(tid, &v)| v <= other.get(tid))
    }
}

/// State of one modeled thread.
#[derive(Clone, Debug, PartialEq)]
enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Parked in a waitset (mutex or condvar); only a wake makes it
    /// runnable again.
    Blocked,
    /// Parked in a timed condvar wait: a wake makes it runnable, but the
    /// scheduler may also *choose* it directly, which models the timeout
    /// firing (logical time jumps forward by the wait duration).
    TimedBlocked(Duration),
    /// The thread's closure returned (or unwound).
    Finished,
}

struct ThreadSlot {
    run: Run,
    /// Happens-before clock of this thread.
    clock: VClock,
    /// Set when a timed wait was ended by the scheduler (timeout) rather
    /// than a notify.
    timed_out: bool,
    /// Threads blocked in `join()` on this one.
    joiners: Vec<usize>,
    /// Clock at `Finished`, joined by joiners.
    final_clock: VClock,
    /// Description of the op this thread will perform when scheduled
    /// (for the deadlock report).
    waiting_on: String,
}

/// One scheduling decision: which thread performed the next op.
struct Branch {
    /// Threads that were eligible, in tid order.
    enabled: Vec<usize>,
    /// Index into `enabled` actually taken.
    chosen: usize,
    /// Preemptions consumed by the schedule *before* this decision.
    preemptions_before: usize,
    /// The thread that performed the previous op (to classify
    /// alternatives as preemptive or not).
    prev: usize,
}

/// Modeled shared objects live here, indexed by id, recreated for every
/// execution together with the user's objects.
pub(crate) enum Object {
    Atomic {
        value: u64,
        /// Clock published by the last Release-or-stronger store (or
        /// joined into by release RMWs).
        sync: VClock,
        /// Whether the *latest* store was Release-or-stronger — a later
        /// Relaxed store breaks the release chain.
        released: bool,
    },
    Mutex {
        owner: Option<usize>,
        /// Clock of the last unlock.
        sync: VClock,
        waiters: Vec<usize>,
    },
    Condvar {
        waiters: VecDeque<usize>,
    },
    Cell {
        /// Per-thread clock component of the last read / write.
        reads: VClock,
        writes: VClock,
        last_writer: Option<usize>,
    },
}

pub(crate) struct ExecInner {
    threads: Vec<ThreadSlot>,
    /// The single thread allowed to run user code right now.
    /// `usize::MAX` once the execution has ended.
    current: usize,
    objects: Vec<Object>,
    /// Schedule points taken so far this execution.
    steps: usize,
    max_steps: usize,
    /// Decision log of this execution.
    branches: Vec<Branch>,
    /// Replay prefix: for decision `i < replay.len()`, take
    /// `enabled[replay[i]]`.
    replay: Vec<usize>,
    preemptions: usize,
    /// Human-readable trace of the execution: one `tN op` per step.
    trace: Vec<String>,
    /// First failure (race / deadlock / livelock / user panic).
    failure: Option<String>,
    /// Set with `failure`: model threads unwind when they observe it.
    abort: bool,
    /// Logical nanoseconds since the execution started.
    clock_ns: u128,
    live_threads: usize,
}

pub(crate) struct Execution {
    inner: StdMutex<ExecInner>,
    cv: StdCondvar,
}

impl Execution {
    fn new(replay: Vec<usize>, max_steps: usize) -> Execution {
        Execution {
            inner: StdMutex::new(ExecInner {
                threads: Vec::new(),
                current: 0,
                objects: Vec::new(),
                steps: 0,
                max_steps,
                branches: Vec::new(),
                replay,
                preemptions: 0,
                trace: Vec::new(),
                failure: None,
                abort: false,
                clock_ns: 0,
                live_threads: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl ExecInner {
    fn register_thread(&mut self, parent: Option<usize>) -> usize {
        let tid = self.threads.len();
        let mut clock = VClock::default();
        if let Some(p) = parent {
            // Spawn edge: everything the parent did happens-before the
            // child's first op.
            let parent_clock = self.threads[p].clock.clone();
            clock.join(&parent_clock);
            let pc = self.threads[p].clock.get(p).saturating_add(1);
            self.threads[p].clock.set(p, pc);
        }
        clock.set(tid, 1);
        self.threads.push(ThreadSlot {
            run: Run::Runnable,
            clock,
            timed_out: false,
            joiners: Vec::new(),
            final_clock: VClock::default(),
            waiting_on: String::new(),
        });
        self.live_threads = self.live_threads.saturating_add(1);
        tid
    }

    pub(crate) fn alloc_object(&mut self, obj: Object) -> usize {
        self.objects.push(obj);
        self.objects.len().saturating_sub(1)
    }

    pub(crate) fn object(&mut self, id: usize) -> &mut Object {
        &mut self.objects[id]
    }

    pub(crate) fn clock_of(&mut self, tid: usize) -> &mut VClock {
        &mut self.threads[tid].clock
    }

    /// Advance `tid`'s own clock component — called once per modeled op
    /// so distinct ops by the same thread are distinguishable to the
    /// race detector.
    fn tick(&mut self, tid: usize) {
        let c = self.threads[tid].clock.get(tid).saturating_add(1);
        self.threads[tid].clock.set(tid, c);
    }

    fn enabled(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.run, Run::Runnable | Run::TimedBlocked(_)))
            .map(|(tid, _)| tid)
            .collect()
    }

    fn fail(&mut self, kind: &str, detail: &str) {
        if self.failure.is_none() {
            let mut msg = format!("{kind}: {detail}\n");
            msg.push_str(&render_trace(&self.trace, &self.threads));
            self.failure = Some(msg);
        }
        self.abort = true;
        // Unblock everything so parked OS threads can unwind.
        for t in &mut self.threads {
            if matches!(t.run, Run::Blocked | Run::TimedBlocked(_)) {
                t.run = Run::Runnable;
            }
        }
    }

    /// Pick the next thread to run after `prev`'s op. Returns false when
    /// the execution is over (all threads finished, or failed).
    fn schedule_next(&mut self, prev: usize) -> bool {
        if self.abort {
            self.current = usize::MAX;
            return false;
        }
        let mut enabled = self.enabled();
        if enabled.is_empty() {
            if self.threads.iter().all(|t| t.run == Run::Finished) {
                self.current = usize::MAX;
                return false;
            }
            let stuck: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.run, Run::Blocked | Run::TimedBlocked(_)))
                .map(|(tid, t)| format!("t{tid} blocked on {}", t.waiting_on))
                .collect();
            self.fail("deadlock", &stuck.join("; "));
            self.current = usize::MAX;
            return false;
        }
        // Preference order: previous thread first (the zero-preemption
        // default), then the remaining runnable tids ascending. The
        // default choice is therefore ALWAYS index 0, which is what
        // `next_replay`'s `chosen + 1 ..` enumeration relies on for
        // exhaustiveness — and the reordering is deterministic, so a
        // replayed prefix reproduces the identical decision list.
        if let Some(p) = enabled.iter().position(|&t| t == prev) {
            enabled.remove(p);
            enabled.insert(0, prev);
        }
        let depth = self.branches.len();
        let chosen_idx = if let Some(&idx) = self.replay.get(depth) {
            idx.min(enabled.len().saturating_sub(1))
        } else {
            0
        };
        let chosen = enabled[chosen_idx];
        let preemptive = chosen != prev && enabled.contains(&prev);
        self.branches.push(Branch {
            enabled,
            chosen: chosen_idx,
            preemptions_before: self.preemptions,
            prev,
        });
        if preemptive {
            self.preemptions = self.preemptions.saturating_add(1);
        }
        // Scheduling a timed waiter = its timeout fires.
        if let Run::TimedBlocked(d) = self.threads[chosen].run {
            self.threads[chosen].run = Run::Runnable;
            self.threads[chosen].timed_out = true;
            self.clock_ns = self.clock_ns.saturating_add(d.as_nanos());
        }
        self.current = chosen;
        true
    }
}

fn render_trace(trace: &[String], threads: &[ThreadSlot]) -> String {
    let mut out = String::from("failing schedule (replay, one line per step):\n");
    for (i, line) in trace.iter().enumerate() {
        out.push_str(&format!("  {i:4}  {line}\n"));
    }
    out.push_str("thread states at failure:\n");
    for (tid, t) in threads.iter().enumerate() {
        out.push_str(&format!("  t{tid}: {:?}\n", t.run));
    }
    out
}

/// Access the current execution, failing loudly outside a model body.
pub(crate) fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("bcp_model sync primitive used outside loom::model body")
    })
}

/// Register a shared object with the current execution.
pub(crate) fn register_object(obj: Object) -> usize {
    let (exec, _) = current();
    let mut inner = exec.lock();
    inner.alloc_object(obj)
}

fn check_abort(inner: &ExecInner) {
    if inner.abort {
        panic::panic_any(ModelAbort);
    }
}

/// Perform one modeled operation: log it, run `f` atomically, then hand
/// the schedule to the next thread and wait for our next turn.
///
/// The calling thread must be `current` (invariant: between runtime
/// calls, exactly the current thread runs user code).
pub(crate) fn op<R>(desc: &str, f: impl FnOnce(&mut ExecInner, usize) -> R) -> R {
    let (exec, me) = current();
    // Destructors (guard drops, `Ring::drop`) run modeled ops while the
    // thread unwinds from an abort or assertion failure. The execution
    // is already doomed: apply the effect without scheduling so cleanup
    // cannot panic inside a panic (which would SIGABRT the process).
    if std::thread::panicking() {
        let mut inner = exec.lock();
        return f(&mut inner, me);
    }
    let mut inner = exec.lock();
    check_abort(&inner);
    debug_assert_eq!(inner.current, me, "non-current thread performed an op");
    // Pre-op schedule point: decide who performs the *next* effect —
    // possibly another thread, whose ops then run before this one.
    inner.steps = inner.steps.saturating_add(1);
    if inner.steps > inner.max_steps {
        let budget = inner.max_steps;
        inner.fail(
            "livelock",
            &format!("execution exceeded {budget} schedule points"),
        );
        exec.cv.notify_all();
        panic::panic_any(ModelAbort);
    }
    inner.schedule_next(me);
    exec.cv.notify_all();
    if inner.abort {
        // Execution failed during scheduling — unwind this thread.
        drop(inner);
        panic::panic_any(ModelAbort);
    }
    while inner.current != me {
        inner = exec.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        check_abort(&inner);
    }
    // Our turn: perform the op.
    inner.trace.push(format!("t{me} {desc}"));
    inner.tick(me);
    f(&mut inner, me)
}

/// Outcome of an [`op_cond`] schedule point.
pub(crate) struct OpOutcome {
    /// True when `f` chose to proceed without blocking.
    pub proceeded: bool,
    /// True when a timed block ended by timeout rather than a wake.
    pub timed_out: bool,
}

/// Like [`op`], but `f` may decide — atomically with its effects — that
/// the thread must park (returning `false`): it then blocks until some
/// other op wakes it, or, when `timed` is set, until the scheduler
/// fires the timeout. `f` must enqueue the thread into whatever waitset
/// will later wake it before returning `false`.
pub(crate) fn op_cond(
    desc: &str,
    timed: Option<Duration>,
    f: impl FnOnce(&mut ExecInner, usize) -> bool,
) -> OpOutcome {
    let (exec, me) = current();
    // As in `op`: never schedule or park while unwinding.
    if std::thread::panicking() {
        let mut inner = exec.lock();
        let proceeded = f(&mut inner, me);
        return OpOutcome {
            proceeded,
            timed_out: false,
        };
    }
    let mut inner = exec.lock();
    check_abort(&inner);
    debug_assert_eq!(inner.current, me, "non-current thread performed an op");
    // Pre-op schedule point, as in `op`.
    inner.steps = inner.steps.saturating_add(1);
    if inner.steps > inner.max_steps {
        let budget = inner.max_steps;
        inner.fail(
            "livelock",
            &format!("execution exceeded {budget} schedule points"),
        );
        exec.cv.notify_all();
        panic::panic_any(ModelAbort);
    }
    inner.schedule_next(me);
    exec.cv.notify_all();
    if inner.abort {
        drop(inner);
        panic::panic_any(ModelAbort);
    }
    while inner.current != me {
        inner = exec.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        check_abort(&inner);
    }
    // Our turn: perform the op; `f` may decide to park us.
    inner.trace.push(format!("t{me} {desc}"));
    inner.tick(me);
    let proceeded = f(&mut inner, me);
    if !proceeded {
        inner.threads[me].run = match timed {
            Some(d) => Run::TimedBlocked(d),
            None => Run::Blocked,
        };
        inner.threads[me].timed_out = false;
        inner.threads[me].waiting_on = desc.to_string();
        // Hand the schedule to someone who can make progress.
        inner.schedule_next(me);
        exec.cv.notify_all();
        if inner.abort {
            drop(inner);
            panic::panic_any(ModelAbort);
        }
        while !(inner.current == me && inner.threads[me].run == Run::Runnable) {
            check_abort(&inner);
            inner = exec.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        check_abort(&inner);
    }
    let timed_out = inner.threads[me].timed_out;
    inner.threads[me].timed_out = false;
    OpOutcome {
        proceeded,
        timed_out,
    }
}

/// Wake every thread in `waiters` (drained by the caller) — used by
/// mutex unlock and `notify_all`. Runs inside an [`op`] closure.
pub(crate) fn wake(inner: &mut ExecInner, waiters: impl IntoIterator<Item = usize>) {
    for tid in waiters {
        if matches!(inner.threads[tid].run, Run::Blocked | Run::TimedBlocked(_)) {
            inner.threads[tid].run = Run::Runnable;
            inner.threads[tid].timed_out = false;
        }
    }
}

/// Mark a condvar waiter as notified: a `TimedBlocked` thread woken this
/// way reports `timed_out == false`.
pub(crate) fn notify_thread(inner: &mut ExecInner, tid: usize) {
    wake(inner, [tid]);
}

/// The logical clock, in nanoseconds since the execution started.
pub(crate) fn clock_ns() -> u128 {
    let (exec, _) = current();
    let ns = exec.lock().clock_ns;
    ns
}

/// Race-detector bookkeeping for a modeled `UnsafeCell` access.
pub(crate) fn cell_access(inner: &mut ExecInner, me: usize, id: usize, write: bool) {
    if std::thread::panicking() {
        // Cleanup access during an abort unwind: nothing left to check.
        return;
    }
    let my_clock = inner.threads[me].clock.clone();
    let Object::Cell {
        reads,
        writes,
        last_writer,
    } = &mut inner.objects[id]
    else {
        unreachable!("cell op on non-cell object");
    };
    let writes_visible = writes.le(&my_clock);
    let reads_visible = reads.le(&my_clock);
    let racy = if write {
        !writes_visible || !reads_visible
    } else {
        !writes_visible
    };
    if write {
        writes.set(me, my_clock.get(me));
        *last_writer = Some(me);
    } else {
        reads.set(me, my_clock.get(me));
    }
    if racy {
        let kind = if write { "write" } else { "read" };
        let other = last_writer.map_or("another thread".to_string(), |w| format!("t{w}"));
        inner.fail(
            "data race",
            &format!(
                "t{me} {kind} of UnsafeCell(#{id}) is unordered with a prior access by {other} \
                 (missing Release/Acquire edge?)"
            ),
        );
        panic::panic_any(ModelAbort);
    }
}

// ---------------------------------------------------------------------------
// Thread support
// ---------------------------------------------------------------------------

/// Handle to a modeled thread. Unlike `std`, dropping without joining is
/// allowed — the execution still waits for the thread to finish.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and take its result. Panics in the
    /// child propagate (as with `std`'s `join().unwrap()` idiom this
    /// returns `Err` on child panic).
    pub fn join(mut self) -> std::thread::Result<T> {
        let tid = self.tid;
        loop {
            // Check-and-park atomically, so a finish between the check
            // and the park cannot strand us.
            let outcome = op_cond(&format!("join(t{tid})"), None, |inner, me| {
                if inner.threads[tid].run == Run::Finished {
                    let fc = inner.threads[tid].final_clock.clone();
                    inner.threads[me].clock.join(&fc);
                    true
                } else {
                    inner.threads[tid].joiners.push(me);
                    false
                }
            });
            if outcome.proceeded {
                break;
            }
        }
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("thread result already taken")
    }
}

/// Spawn a modeled thread.
pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
    let (exec, me) = current();
    let tid = {
        let mut inner = exec.lock();
        inner.register_thread(Some(me))
    };
    let result: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
    let os = {
        let exec = exec.clone();
        let result = result.clone();
        std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
            // Wait for our first turn; skip the body entirely if the
            // execution already failed.
            let aborted = {
                let mut inner = exec.lock();
                while inner.current != tid && !inner.abort {
                    inner = exec.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
                inner.abort
            };
            let r = if aborted {
                Err(Box::new(ModelAbort) as Box<dyn std::any::Any + Send>)
            } else {
                panic::catch_unwind(AssertUnwindSafe(f))
            };
            finish_thread(&exec, tid, &r);
            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            CURRENT.with(|c| *c.borrow_mut() = None);
        })
    };
    JoinHandle {
        tid,
        result,
        os: Some(os),
    }
}

/// Mark `tid` finished: record its final clock, wake joiners, schedule
/// someone else, and surface non-abort panics as execution failures.
fn finish_thread<T>(exec: &Arc<Execution>, tid: usize, r: &std::thread::Result<T>) {
    let mut inner = exec.lock();
    if let Err(e) = r {
        if !e.is::<ModelAbort>() {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "model thread panicked".to_string());
            inner.fail("panic", &format!("t{tid}: {msg}"));
        }
    }
    inner.threads[tid].run = Run::Finished;
    inner.threads[tid].final_clock = inner.threads[tid].clock.clone();
    inner.live_threads = inner.live_threads.saturating_sub(1);
    let joiners: Vec<usize> = inner.threads[tid].joiners.drain(..).collect();
    wake(&mut inner, joiners);
    if inner.current == tid || inner.current == usize::MAX {
        inner.schedule_next(tid);
    }
    exec.cv.notify_all();
}

/// A schedule point with no effect — `yield_now` / `spin_loop`.
pub fn yield_now() {
    op("yield", |_, _| ());
}

// ---------------------------------------------------------------------------
// The exploration driver
// ---------------------------------------------------------------------------

/// Exploration statistics returned by [`Builder::check`].
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Executions (schedules) explored.
    pub schedules: u64,
    /// True when the schedule tree was exhausted within the bounds; false
    /// when the iteration or wall-clock cap stopped the search first.
    pub complete: bool,
}

/// Exploration bounds. The defaults suit small model tests: full DFS
/// capped at 200k schedules / 30 s wall clock / 20k steps per execution.
#[derive(Clone, Debug)]
pub struct Builder {
    /// CHESS preemption bound; `None` explores every schedule.
    pub preemption_bound: Option<usize>,
    /// Stop after exploring this many schedules (sets `complete=false`).
    pub max_schedules: u64,
    /// Stop after this much wall-clock time (sets `complete=false`).
    pub max_duration: Duration,
    /// Per-execution schedule-point budget — exceeding it is reported as
    /// a livelock.
    pub max_steps: usize,
    /// Name used for the replay artifact written to
    /// `$BCP_MODEL_REPLAY_DIR` on failure.
    pub name: String,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: None,
            max_schedules: 200_000,
            max_duration: Duration::from_secs(30),
            max_steps: 20_000,
            name: "model".to_string(),
        }
    }
}

impl Builder {
    /// Fresh builder with default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Explore schedules of `body` until the tree is exhausted or a
    /// bound is hit. Panics (with the failing schedule) on the first
    /// execution that races, deadlocks, livelocks, or panics.
    pub fn check<F>(&self, body: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let started = std::time::Instant::now();
        let mut replay: Vec<usize> = Vec::new();
        let mut schedules: u64 = 0;
        loop {
            let exec = Arc::new(Execution::new(replay.clone(), self.max_steps));
            // tid 0 = the model body.
            {
                let mut inner = exec.lock();
                inner.register_thread(None);
                inner.current = 0;
            }
            let root = {
                let exec = exec.clone();
                let body = body.clone();
                std::thread::spawn(move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), 0)));
                    let r = panic::catch_unwind(AssertUnwindSafe(|| body()));
                    finish_thread(&exec, 0, &r);
                    CURRENT.with(|c| *c.borrow_mut() = None);
                })
            };
            // Wait for the execution to end: all threads finished.
            {
                let mut inner = exec.lock();
                while inner.live_threads > 0 {
                    inner = exec.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
            }
            let _ = root.join();
            schedules = schedules.saturating_add(1);
            let inner = exec.lock();
            if let Some(failure) = &inner.failure {
                let msg = format!(
                    "model check '{}' failed on schedule {schedules}\n{failure}",
                    self.name
                );
                write_replay_artifact(&self.name, &msg);
                drop(inner);
                panic!("{msg}");
            }
            // Backtrack: deepest decision with an admissible untried
            // alternative.
            let next = next_replay(&inner.branches, self.preemption_bound);
            drop(inner);
            match next {
                Some(r) => replay = r,
                None => {
                    return Stats {
                        schedules,
                        complete: true,
                    }
                }
            }
            if schedules >= self.max_schedules || started.elapsed() >= self.max_duration {
                return Stats {
                    schedules,
                    complete: false,
                };
            }
        }
    }
}

/// DFS backtracking over the decision log of the last execution.
fn next_replay(branches: &[Branch], bound: Option<usize>) -> Option<Vec<usize>> {
    for depth in (0..branches.len()).rev() {
        let b = &branches[depth];
        let mut alt = b.chosen.saturating_add(1);
        while alt < b.enabled.len() {
            let preemptive = b.enabled[alt] != b.prev && b.enabled.contains(&b.prev);
            let admissible = match bound {
                Some(bound) => !preemptive || b.preemptions_before < bound,
                None => true,
            };
            if admissible {
                let mut replay: Vec<usize> = branches[..depth].iter().map(|b| b.chosen).collect();
                replay.push(alt);
                return Some(replay);
            }
            alt = alt.saturating_add(1);
        }
    }
    None
}

fn write_replay_artifact(name: &str, msg: &str) {
    if let Ok(dir) = std::env::var("BCP_MODEL_REPLAY_DIR") {
        let safe: String = name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("replay-{safe}.txt"));
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(path, msg);
    }
}

/// Explore `body` with default bounds, panicking on any failure.
pub fn model<F>(body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(body);
}
