//! Modeled blocking primitives: `Mutex` and `Condvar`.
//!
//! API follows the parking_lot convention the workspace already uses:
//! `lock()` returns the guard directly (a panicked model thread aborts
//! the whole execution, so poisoning is meaningless here), and
//! `wait_timeout` returns `(guard, timed_out)`.
//!
//! A timed condvar wait is modeled *nondeterministically*: the waiter
//! stays eligible for scheduling, and the scheduler choosing it before
//! any notify arrives is exactly the timeout firing — logical time
//! jumps forward by the wait duration. Both the notified and the
//! timed-out outcome are therefore explored on every `wait_timeout`.

pub use std::sync::Arc;

use crate::rt::{self, Object, VClock};
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;
use std::time::Duration;

pub mod atomic {
    //! Modeled atomics (`loom::sync::atomic`).
    pub use crate::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
}

/// Modeled mutex. Lock acquisition order is a scheduler decision, so
/// every contention outcome is explored.
pub struct Mutex<T> {
    data: std::cell::UnsafeCell<T>,
    id: OnceLock<usize>,
}

// SAFETY: the runtime guarantees at most one model thread runs at a
// time and the lock protocol below guarantees mutual exclusion of
// guards, so `&Mutex<T>` may cross model threads whenever `T: Send`.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            data: std::cell::UnsafeCell::new(value),
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(|| {
            rt::register_object(Object::Mutex {
                owner: None,
                sync: VClock::default(),
                waiters: Vec::new(),
            })
        })
    }

    /// Acquire the lock, parking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        lock_loop(self.id(), None);
        MutexGuard { lock: self }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Acquire mutex `mutex_id`; on first attempt also deregister from
/// condvar `cv_cleanup` (the timed-out-waiter path). Attempt and park
/// are one atomic schedule point, so wakeups cannot be lost.
fn lock_loop(mutex_id: usize, cv_cleanup: Option<usize>) {
    let mut cleanup = cv_cleanup;
    loop {
        let outcome = rt::op_cond("Mutex.lock", None, |inner, me| {
            if let Some(cv) = cleanup {
                let Object::Condvar { waiters } = inner.object(cv) else {
                    unreachable!("condvar op on non-condvar object");
                };
                waiters.retain(|&t| t != me);
            }
            let Object::Mutex {
                owner,
                sync,
                waiters,
            } = inner.object(mutex_id)
            else {
                unreachable!("mutex op on non-mutex object");
            };
            if owner.is_none() {
                *owner = Some(me);
                let s = sync.clone();
                inner.clock_of(me).join(&s);
                true
            } else {
                waiters.push(me);
                false
            }
        });
        cleanup = None;
        // During an abort unwind ops never park (see `rt::op_cond`), so
        // give up rather than spin on a lock nobody will release.
        if outcome.proceeded || std::thread::panicking() {
            return;
        }
    }
}

/// Release mutex `mutex_id`, publishing the caller's clock and waking
/// every parked waiter to recontend.
fn unlock(mutex_id: usize) {
    rt::op("Mutex.unlock", |inner, me| {
        let clock = inner.clock_of(me).clone();
        let Object::Mutex {
            owner,
            sync,
            waiters,
        } = inner.object(mutex_id)
        else {
            unreachable!("mutex op on non-mutex object");
        };
        *owner = None;
        *sync = clock;
        let woken: Vec<usize> = std::mem::take(waiters);
        rt::wake(inner, woken);
    });
}

/// Guard for a modeled [`Mutex`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds the modeled lock; mutual exclusion is
        // enforced by the runtime's lock protocol.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `Deref`, plus `&mut self` forbids aliasing.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        unlock(self.lock.id());
    }
}

/// Modeled condition variable; pairs with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    id: OnceLock<usize>,
}

impl Condvar {
    /// New condvar.
    pub const fn new() -> Condvar {
        Condvar {
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(|| {
            rt::register_object(Object::Condvar {
                waiters: VecDeque::new(),
            })
        })
    }

    /// Release the guard's mutex, park until notified, reacquire.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (mutex_id, lock) = (guard.lock.id(), guard.lock);
        std::mem::forget(guard);
        self.park(mutex_id, None);
        MutexGuard { lock }
    }

    /// Like [`wait`](Condvar::wait) with a timeout: returns the
    /// reacquired guard and whether the wait timed out (`true`) rather
    /// than being notified.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (mutex_id, lock) = (guard.lock.id(), guard.lock);
        std::mem::forget(guard);
        let timed_out = self.park(mutex_id, Some(dur));
        (MutexGuard { lock }, timed_out)
    }

    /// Atomically release the mutex and park on the condvar; returns
    /// whether a timed park timed out.
    fn park(&self, mutex_id: usize, timed: Option<Duration>) -> bool {
        let cv_id = self.id();
        let outcome = rt::op_cond("Condvar.wait", timed, |inner, me| {
            let clock = inner.clock_of(me).clone();
            let Object::Mutex {
                owner,
                sync,
                waiters,
            } = inner.object(mutex_id)
            else {
                unreachable!("mutex op on non-mutex object");
            };
            *owner = None;
            *sync = clock;
            let woken: Vec<usize> = std::mem::take(waiters);
            rt::wake(inner, woken);
            let Object::Condvar { waiters } = inner.object(cv_id) else {
                unreachable!("condvar op on non-condvar object");
            };
            waiters.push_back(me);
            false
        });
        // Reacquire; a timed-out waiter is still queued on the condvar
        // and must deregister (atomically with its first lock attempt)
        // so it cannot swallow a later notify meant for someone else.
        let cleanup = if outcome.timed_out { Some(cv_id) } else { None };
        lock_loop(mutex_id, cleanup);
        outcome.timed_out
    }

    /// Wake the longest-parked waiter, if any.
    pub fn notify_one(&self) {
        let cv_id = self.id();
        rt::op("Condvar.notify_one", |inner, _me| {
            let Object::Condvar { waiters } = inner.object(cv_id) else {
                unreachable!("condvar op on non-condvar object");
            };
            if let Some(t) = waiters.pop_front() {
                rt::notify_thread(inner, t);
            }
        });
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        let cv_id = self.id();
        rt::op("Condvar.notify_all", |inner, _me| {
            let Object::Condvar { waiters } = inner.object(cv_id) else {
                unreachable!("condvar op on non-condvar object");
            };
            let woken: Vec<usize> = waiters.drain(..).collect();
            rt::wake(inner, woken);
        });
    }
}
