//! Modeled threads (`loom::thread`).

pub use crate::rt::{spawn, yield_now, JoinHandle};
