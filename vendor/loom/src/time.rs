//! Logical time for the model: `Instant` reads the execution's logical
//! nanosecond clock, which only advances when a timed wait fires.
//!
//! This makes deadline races *schedulable*: whether a deadline expires
//! before or after a competing delivery is a scheduler decision, not a
//! wall-clock accident, so both outcomes are explored deterministically.

use std::time::Duration;

/// Modeled monotonic instant (logical nanoseconds since the execution
/// started).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(u128);

impl Instant {
    /// The current logical time.
    pub fn now() -> Instant {
        Instant(crate::rt::clock_ns())
    }

    /// Logical time elapsed since `self`.
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// `self + d`, `None` on overflow.
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d.as_nanos()).map(Instant)
    }

    /// Duration from `earlier` to `self`; `None` when `earlier` is
    /// later.
    pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
        let ns = self.0.checked_sub(earlier.0)?;
        Some(Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX)))
    }

    /// Duration from `earlier` to `self`, zero when `earlier` is later.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        self.checked_duration_since(earlier)
            .unwrap_or(Duration::ZERO)
    }

    /// Duration from `earlier` to `self`; panics when `earlier` is
    /// later (mirrors `std`).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.checked_duration_since(earlier)
            .expect("supplied instant is later than self")
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, d: Duration) -> Instant {
        self.checked_add(d).expect("overflow when adding duration")
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;

    fn sub(self, earlier: Instant) -> Duration {
        self.duration_since(earlier)
    }
}
