//! Offline stand-in for the `parking_lot` crate.
//!
//! The registry mirror is unreachable in this environment, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses:
//! `Mutex` and `RwLock` with non-poisoning `lock()`/`read()`/`write()`
//! accessors. Backed by `std::sync`; a poisoned std lock (a panic while
//! holding the guard) is unwrapped into the same panic `parking_lot`
//! would surface as a deadlock/abort situation.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring std poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![0u64; 3]);
        m.lock()[1] += 5;
        assert_eq!(m.into_inner(), vec![0, 5, 0]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7i32);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
