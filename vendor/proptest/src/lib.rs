//! Offline stand-in for the `proptest` crate.
//!
//! Supports the surface the workspace's property tests use: the
//! `proptest!` macro with optional `#![proptest_config(...)]`, integer and
//! float range strategies, `any::<T>()`, `proptest::collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a fixed
//! seed so failures reproduce deterministically; there is **no
//! shrinking** — a failing case panics with its case index so it can be
//! replayed by seed.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

// Re-export for macro expansions: consumer crates may not depend on rand
// themselves.
#[doc(hidden)]
pub use rand as __rand;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the offline suite quick while
        // still exercising a spread of shapes. Like the real crate, the
        // `PROPTEST_CASES` environment variable overrides the default so CI
        // can cap (or a soak run can raise) the case count.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1.0e12f64..1.0e12)
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` macro body needs in scope.

    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// Discard a case whose inputs don't satisfy a precondition. Each case
/// body runs in its own closure, so an early `return` skips just that
/// case (the real crate also retries with fresh inputs; the stand-in
/// simply runs fewer effective cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert inside a property (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (stand-in: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (stand-in: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Seed differs per property (by name hash) but is stable
            // run-to-run, so failures replay.
            let seed = {
                let name = stringify!($name);
                let mut h = 0xcbf29ce484222325u64;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                }
                h
            };
            for case in 0..cfg.cases {
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        seed.wrapping_add(case as u64),
                    );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> () { $body };
                if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {case}/{} failed for `{}` (seed {seed:#x})",
                        cfg.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_respected(a in 3usize..10, b in -2i32..2, x in 0.0f32..1.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..2).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn vec_strategy_lengths(v in collection::vec(any::<bool>(), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn tuples_generate(p in any::<(bool, bool)>(), s in any::<u64>()) {
            let _ = (p, s);
        }
    }
}
