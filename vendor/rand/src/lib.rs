//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Everything the workspace calls — `StdRng::seed_from_u64`, `Rng::gen`,
//! `gen_range`, `gen_bool`, and `distributions::{Uniform, Distribution}` —
//! backed by xoshiro256\*\* seeded through splitmix64. Streams are
//! deterministic for a given seed (the repo's own requirement) but are
//! *not* the same streams the real `rand` produces; all in-repo seeds
//! were re-baselined against this generator.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] via the [`distributions::Standard`]
/// distribution.
pub trait Rng: RngCore {
    /// Sample a value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Per-type uniform sampling — mirrors rand's `SampleUniform` so the two
/// `SampleRange` impls below stay generic. That matters for inference:
/// `Range<{float}>` must unify its element type with the surrounding
/// expression (e.g. `0.5f32 + rng.gen_range(-0.04..0.04)`), which
/// per-type `SampleRange` impls would block.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                lo + (hi - lo) * $unit(rng.next_u64())
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // The closed/open distinction is measure-zero for floats.
                assert!(lo <= hi, "empty gen_range");
                lo + (hi - lo) * $unit(rng.next_u64())
            }
        }
    )*};
}
float_sample_uniform!(f32 => unit_f32, f64 => unit_f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

pub mod distributions {
    //! `Distribution` trait plus the `Uniform` and `Standard` instances.

    use super::{unit_f32, unit_f64, SampleRange};
    use std::ops::Range;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over the half-open range `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new needs lo < hi");
            Uniform { lo, hi }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy,
        Range<T>: SampleRange<T>,
    {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T {
            (self.lo..self.hi).sample_from(rng)
        }
    }

    /// The distribution behind `rng.gen()`: full integer ranges, unit
    /// interval for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* — the stand-in for rand's `StdRng`. Fast, passes
    /// BigCrush, and trivially seedable from 64 bits via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=255u32);
            assert!(w <= 255);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_and_standard_sample() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Uniform::new(0.25f32, 0.75);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((0.25..0.75).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
