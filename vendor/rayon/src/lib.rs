//! Offline stand-in for the `rayon` crate.
//!
//! The workspace only touches `par_iter`, `par_chunks_mut` and
//! `into_par_iter`, always followed by ordinary iterator combinators.
//! This stub keeps those entry points compiling by returning the
//! equivalent *sequential* std iterators — std's `Iterator` already
//! provides `map`/`zip`/`enumerate`/`for_each`/`collect`/`sum`, so call
//! chains type-check unchanged. Parallel speedups return when the real
//! rayon is restorable; correctness and determinism are identical (and
//! this container is single-core anyway).

pub mod prelude {
    /// `collection.into_par_iter()` — sequential `into_iter` fallback.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel consuming iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `slice.par_iter()` — sequential shared-slice fallback.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for rayon's parallel slice iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `slice.par_iter_mut()` / `slice.par_chunks_mut(n)` — sequential
    /// mutable-slice fallbacks.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for rayon's parallel mutable iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for rayon's parallel mutable chunks.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// Rayon-only combinators that std's `Iterator` doesn't spell the same
    /// way (`flat_map_iter` takes a *serial* inner iterator in rayon; here
    /// everything is serial, so it's plain `flat_map`).
    pub trait ParallelIterator: Iterator + Sized {
        /// Sequential stand-in for rayon's `flat_map_iter`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }
    }
    impl<I: Iterator> ParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn entry_points_behave_like_std() {
        let v = [1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let s: i32 = (0..5).into_par_iter().sum();
        assert_eq!(s, 10);
        let mut buf = [0u8; 6];
        buf.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u8));
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);
    }
}
