//! Offline stand-in for the `serde` crate.
//!
//! The real serde is unreachable in this environment (no registry), so
//! the workspace vendors a miniature replacement. Instead of serde's
//! visitor-based zero-copy data model, this uses a concrete JSON value
//! tree ([`Value`]): `Serialize` renders into a `Value`, `Deserialize`
//! reads back out of one. `serde_json` (also vendored) is the only
//! consumer in the workspace, so the simpler model is observationally
//! equivalent — same derive spelling, same externally-tagged enum JSON —
//! at the cost of an intermediate allocation nobody here measures.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Object representation: ordered string-keyed map.
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped value tree — the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    Int(i64),
    /// Unsigned integer (non-negative JSON numbers).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Object accessor.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric accessor (any number form).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned accessor (integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Signed accessor (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// Deserialization failure: a message plus breadcrumb context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }

    /// Prefix a field breadcrumb onto the message.
    pub fn in_field(self, field: &str) -> Self {
        Error {
            msg: format!("{field}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produce the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Deserialize for &'static str {
    /// This stand-in has no deserializer lifetimes, so borrowed strings are
    /// produced by leaking an owned copy. Fine for the workspace's uses
    /// (static device names in occasionally-loaded configs); do not
    /// deserialize `&'static str` in a hot loop.
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::expected("string", "&str"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::expected("2-array", "tuple"))?;
        if a.len() != 2 {
            return Err(Error::expected("2-array", "tuple"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::expected("3-array", "tuple"))?;
        if a.len() != 3 {
            return Err(Error::expected("3-array", "tuple"));
        }
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "map"))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "map"))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f32::from_value(&1.5f32.to_value()), Ok(1.5));
        assert_eq!(
            Vec::<bool>::from_value(&vec![true, false].to_value()),
            Ok(vec![true, false])
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn out_of_range_is_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn index_sugar() {
        let mut m = Map::new();
        m.insert("k".into(), Value::UInt(5));
        let v = Value::Object(m);
        assert_eq!(v["k"].as_u64(), Some(5));
        assert!(v["missing"].is_null());
    }
}
