//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored serde's
//! `Value`-tree data model. With no `syn`/`quote` available, the item is
//! parsed directly from the `proc_macro::TokenStream`: attributes are
//! skipped, angle-bracket depth is tracked to split fields on top-level
//! commas, and code is emitted as a string re-parsed into tokens.
//!
//! Supported shapes (everything the workspace derives on): non-generic
//! named-field structs, tuple structs, and enums whose variants are unit,
//! tuple, or named-field. Enum JSON uses serde's externally-tagged
//! convention: `"Variant"` for unit, `{"Variant": …}` otherwise.
//! `#[serde(...)]` attributes are NOT interpreted — the workspace uses
//! none — and generics are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, kind) = parse_item(input);
    gen_serialize(&name, &kind)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, kind) = parse_item(input);
    gen_deserialize(&name, &kind)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Kind) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let item_kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected struct/enum keyword, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive stand-in does not support generic type `{name}`");
        }
    }
    let kind = match item_kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(split_top_level(g.stream()).len())
            }
            _ => Kind::TupleStruct(0), // unit struct `struct S;`
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: enum `{name}` without body: {other:?}"),
        },
        other => panic!("derive supports struct/enum only, got `{other}`"),
    };
    (name, kind)
}

/// Split a token stream on commas at angle-bracket depth 0, dropping empty
/// trailing chunks.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// From one comma-chunk of a named-field list, extract the field ident
/// (after skipping attributes and visibility).
fn field_name(chunk: &[TokenTree]) -> String {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) => return id.to_string(),
            other => panic!("derive: expected field name, got {other:?}"),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|c| field_name(c))
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let mut i = 0;
            while let Some(TokenTree::Punct(p)) = chunk.get(i) {
                if p.as_char() == '#' {
                    i += 2;
                } else {
                    break;
                }
            }
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("derive: expected variant name, got {other:?}"),
            };
            let kind = match chunk.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                _ => VariantKind::Unit,
            };
            Variant { name, kind }
        })
        .collect()
}

// ---- codegen --------------------------------------------------------------

fn gen_serialize(name: &str, kind: &Kind) -> String {
    let body = match kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let mut s = String::from("::serde::Value::Array(vec![");
            for i in 0..*n {
                s.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
            }
            s.push_str("])");
            s
        }
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(",")
                            )
                        };
                        s.push_str(&format!(
                            "{name}::{vn}({}) => {{\nlet mut m = ::serde::Map::new();\nm.insert(String::from(\"{vn}\"), {inner});\n::serde::Value::Object(m)\n}},\n",
                            binds.join(",")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(String::from(\"{f}\"), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        s.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{inner}let mut m = ::serde::Map::new();\nm.insert(String::from(\"{vn}\"), ::serde::Value::Object(fm));\n::serde::Value::Object(m)\n}},\n",
                            fields.join(",")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, kind: &Kind) -> String {
    let body = match kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let m = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n"
            );
            s.push_str(&format!("::core::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(m.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|e| e.in_field(\"{name}.{f}\"))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Kind::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v).map_err(|e| e.in_field(\"{name}.0\"))?))"
        ),
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\nif a.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::expected(\"{n}-array\", \"{name}\")); }}\n"
            );
            s.push_str(&format!("::core::result::Result::Ok({name}("));
            for i in 0..*n {
                s.push_str(&format!("::serde::Deserialize::from_value(&a[{i}])?,"));
            }
            s.push_str("))");
            s
        }
        Kind::Enum(variants) => {
            // Unit variants arrive as bare strings; payload variants as
            // single-key objects {"Variant": …}. Accept {"Unit": null} too.
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                        obj_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            obj_arms.push_str(&format!(
                                "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner).map_err(|e| e.in_field(\"{name}::{vn}\"))?)),\n"
                            ));
                        } else {
                            let mut arm = format!(
                                "\"{vn}\" => {{\nlet a = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vn}\"))?;\nif a.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::expected(\"{n}-array\", \"{name}::{vn}\")); }}\n::core::result::Result::Ok({name}::{vn}("
                            );
                            for i in 0..*n {
                                arm.push_str(&format!("::serde::Deserialize::from_value(&a[{i}])?,"));
                            }
                            arm.push_str("))\n},\n");
                            obj_arms.push_str(&arm);
                        }
                    }
                    VariantKind::Named(fields) => {
                        let mut arm = format!(
                            "\"{vn}\" => {{\nlet fm = inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vn}\"))?;\n::core::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(fm.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|e| e.in_field(\"{name}::{vn}.{f}\"))?,\n"
                            ));
                        }
                        arm.push_str("})\n},\n");
                        obj_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{str_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (k, inner) = m.iter().next().unwrap();\n\
                 let _ = inner;\n\
                 match k.as_str() {{\n{obj_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::Error::expected(\"string or single-key object\", \"{name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\nfn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
