//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the vendored serde's [`Value`] tree to JSON text and parses
//! JSON text back. Numbers keep exact u64/i64 integers (BNN weight words
//! are full-width `u64`s, beyond f64's 2^53 integer range), floats print
//! with Rust's shortest-roundtrip formatting, and non-finite floats
//! serialize as `null` (matching the real crate's default).

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::{Map, Value};

/// Serialization or parse failure.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ---------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} keeps shortest-roundtrip formatting and a trailing
                // ".0" on integral floats, so the value re-parses as Float.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_lit("\\u")?;
                                let lo = self.parse_hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    s.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(
            std::str::from_utf8(chunk).map_err(|_| self.err("bad hex"))?,
            16,
        )
        .map_err(|_| self.err("bad hex digits"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn u64_words_survive_exactly() {
        let words = vec![u64::MAX, 0x8000_0000_0000_0001, 3];
        let json = to_string(&words).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), words);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1f32, 1.0, -7.25e-10, 3.4e38] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&json).unwrap(), x, "via {json}");
        }
        // Integral floats keep their float-ness through the writer.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn nested_value_roundtrip() {
        let json = r#"{"a": [1, 2.5, "x"], "b": {"c": null, "d": false}}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert!(v["b"]["c"].is_null());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"k": [1, {"n": 2}]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
        assert_eq!(from_str::<String>("\"é😀\"").unwrap(), "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
